//===- transform/GlueKernels.cpp - Lower blocking CPU code to the GPU --------===//
//
// Part of the CGCM reproduction project.
//
//===----------------------------------------------------------------------===//

#include "transform/GlueKernels.h"

#include "analysis/Dominators.h"
#include "analysis/LoopInfo.h"
#include "ir/IRBuilder.h"
#include "pass/Analyses.h"
#include "pass/AnalysisManager.h"
#include "ir/Verifier.h"
#include "support/Diagnostics.h"
#include "support/ErrorHandling.h"
#include "transform/CommManagement.h"
#include "transform/Utils.h"

#include <set>

using namespace cgcm;

namespace {

bool isPureMathCall(const Instruction *I) {
  const auto *CI = dyn_cast<CallInst>(I);
  if (!CI)
    return false;
  const std::string &N = CI->getCallee()->getName();
  return N == "sqrt" || N == "exp" || N == "log" || N == "sin" ||
         N == "cos" || N == "fabs" || N == "pow";
}

/// Instructions a glue kernel may contain: straight-line compute and
/// memory traffic. No control flow, no launches, no runtime calls, no
/// allocation, no pointer stores (CGCM forbids pointer stores on the
/// GPU).
bool isGlueable(const Instruction *I) {
  switch (I->getKind()) {
  case Value::ValueKind::Load:
  case Value::ValueKind::GEP:
  case Value::ValueKind::BinOp:
  case Value::ValueKind::Cmp:
  case Value::ValueKind::Cast:
  case Value::ValueKind::Select:
    return true;
  case Value::ValueKind::Store:
    return !cast<StoreInst>(I)
                ->getValueOperand()
                ->getType()
                ->isPointerTy();
  case Value::ValueKind::Call:
    return isPureMathCall(I);
  default:
    return false;
  }
}

class GlueDriver {
public:
  GlueDriver(Module &M, ModuleAnalysisManager &AM, DiagnosticEngine *Remarks)
      : M(M), AM(AM), Remarks(Remarks) {}

  GlueStats run() {
    for (const auto &F : M.functions()) {
      if (F->isDeclaration() || F->isKernel())
        continue;
      // One outlining invalidates iterators; fixpoint per function.
      // Outlining swaps instructions for a launch inside one block, so
      // the host loop forest survives every round.
      while (outlineOneRun(*F))
        ;
    }
    // New glue kernels change the module's call structure.
    if (Stats.GlueKernelsCreated)
      AM.invalidateResult<CallGraphAnalysis>();
    std::string Err;
    if (!verifyModule(M, &Err))
      reportFatalError("glue kernels produced invalid IR: " + Err);
    return Stats;
  }

private:
  /// Managed pointers (runtime-call operands) within a loop, and whether
  /// promotion of each is blocked by CPU memory traffic.
  std::vector<Value *> blockedPointers(Loop *L) {
    std::vector<Instruction *> Insts;
    for (BasicBlock *BB : L->getBlocks())
      for (const auto &I : *BB)
        Insts.push_back(I.get());
    // First-seen order, not pointer order: Blocked's order must not
    // depend on allocation addresses (deterministic output).
    std::vector<Value *> Managed;
    std::set<Value *> ManagedSeen;
    for (Instruction *I : Insts)
      if (Value *P = getRuntimeCallPointer(I))
        if (ManagedSeen.insert(P).second)
          Managed.push_back(P);
    std::vector<Instruction *> NonRuntime;
    for (Instruction *I : Insts)
      if (!getRuntimeCallPointer(I))
        NonRuntime.push_back(I);
    std::vector<Value *> Blocked;
    for (Value *P : Managed)
      if (regionMayModRef(P, NonRuntime))
        Blocked.push_back(P);
    return Blocked;
  }

  bool outlineOneRun(Function &F) {
    LoopInfo &LI =
        AM.getFunctionAnalysisManager().getResult<LoopAnalysis>(F);
    for (const auto &L : LI.getLoops()) {
      std::vector<Value *> Blocked = blockedPointers(L.get());
      if (Blocked.empty())
        continue;
      // Only straight-line code at the top level of the launching loop is
      // "a small CPU region between two GPU functions" (section 5.3);
      // code in nested loops executes too often for a 1-thread kernel.
      for (BasicBlock *BB : L->getBlocks()) {
        if (LI.getLoopFor(BB) != L.get())
          continue;
        if (outlineInBlock(F, BB, Blocked))
          return true;
      }
    }
    return false;
  }

  /// True if \p I is a memory access that blocks one of \p Blocked.
  bool blocksPromotion(Instruction *I, const std::vector<Value *> &Blocked) {
    if (!isa<LoadInst>(I) && !isa<StoreInst>(I))
      return false;
    for (Value *P : Blocked)
      if (regionMayModRef(P, {I}))
        return true;
    return false;
  }

  bool outlineInBlock(Function &F, BasicBlock *BB,
                      const std::vector<Value *> &Blocked) {
    // Maximal contiguous glueable runs.
    std::vector<Instruction *> Run;
    for (auto It = BB->begin(), E = BB->end();; ++It) {
      Instruction *I = It == E ? nullptr : It->get();
      if (I && isGlueable(I)) {
        Run.push_back(I);
        continue;
      }
      if (!Run.empty() && tryOutline(F, Run, Blocked))
        return true;
      Run.clear();
      if (!I)
        return false;
    }
  }

  bool tryOutline(Function &F, std::vector<Instruction *> Run,
                  const std::vector<Value *> &Blocked) {
    auto UsedOutside = [&](Instruction *I) {
      for (const User *U : I->users()) {
        const auto *UI = cast<Instruction>(U);
        bool Inside = false;
        for (Instruction *R : Run)
          if (R == UI) {
            Inside = true;
            break;
          }
        if (!Inside)
          return true;
      }
      return false;
    };

    // Trim leading/trailing instructions whose values escape the run.
    bool Trimmed = true;
    while (Trimmed && !Run.empty()) {
      Trimmed = false;
      if (UsedOutside(Run.back())) {
        Run.pop_back();
        Trimmed = true;
        continue;
      }
      if (UsedOutside(Run.front())) {
        Run.erase(Run.begin());
        Trimmed = true;
      }
    }
    if (Run.empty() || Run.size() > GlueMaxInstructions)
      return false;

    // The run must actually unblock something and have no live-outs.
    bool Blocks = false;
    for (Instruction *I : Run)
      if (blocksPromotion(I, Blocked)) {
        Blocks = true;
        break;
      }
    if (!Blocks)
      return false;
    for (Instruction *I : Run)
      if (UsedOutside(I))
        return false;

    outline(F, Run);
    return true;
  }

  void outline(Function &F, const std::vector<Instruction *> &Run) {
    TypeContext &Ctx = M.getContext();
    std::set<Instruction *> InRun(Run.begin(), Run.end());

    // Live-ins: operands defined outside the run.
    std::vector<Value *> LiveIns;
    std::set<Value *> Seen;
    for (Instruction *I : Run) {
      for (Value *Op : I->operands()) {
        if (isa<Constant>(Op) || isa<GlobalVariable>(Op) ||
            isa<Function>(Op))
          continue;
        if (auto *OI = dyn_cast<Instruction>(Op))
          if (InRun.count(OI))
            continue;
        if (Seen.insert(Op).second)
          LiveIns.push_back(Op);
      }
    }

    std::vector<Type *> ParamTys;
    for (Value *V : LiveIns)
      ParamTys.push_back(V->getType());
    Function *GK = M.getOrCreateFunction(
        "glue_k" + std::to_string(Stats.GlueKernelsCreated),
        Ctx.getFunctionTy(Ctx.getVoidTy(), ParamTys));
    GK->setKernel(true);
    GK->setGlueKernel(true);
    if (Remarks)
      Remarks->remark("cgcm-glue-outline", Run.front()->getLoc(),
                      "lowered " + std::to_string(Run.size()) +
                          " blocking CPU instruction(s) into glue kernel '" +
                          GK->getName() + "'",
                      F.getName());
    ++Stats.GlueKernelsCreated;
    Stats.InstructionsLowered += Run.size();

    std::map<const Value *, Value *> VMap;
    for (unsigned I = 0; I != LiveIns.size(); ++I)
      VMap[LiveIns[I]] = GK->getArg(I);

    BasicBlock *Body = GK->createBlock("glue");
    IRBuilder B(M);
    B.setInsertPoint(Body);
    auto MapValue = [&](Value *Op) -> Value * {
      auto It = VMap.find(Op);
      return It != VMap.end() ? It->second : Op;
    };
    for (Instruction *I : Run) {
      Instruction *NewI = nullptr;
      switch (I->getKind()) {
      case Value::ValueKind::Load:
        NewI = B.createLoad(MapValue(I->getOperand(0)), I->getName());
        break;
      case Value::ValueKind::Store:
        NewI = B.createStore(MapValue(I->getOperand(0)),
                             MapValue(I->getOperand(1)));
        break;
      case Value::ValueKind::GEP: {
        auto *G = cast<GEPInst>(I);
        NewI = B.createGEP(MapValue(G->getPointerOperand()),
                           MapValue(G->getIndexOperand()), G->getName());
        break;
      }
      case Value::ValueKind::BinOp: {
        auto *BO = cast<BinOpInst>(I);
        NewI = B.createBinOp(BO->getOp(), MapValue(BO->getLHS()),
                             MapValue(BO->getRHS()), BO->getName());
        break;
      }
      case Value::ValueKind::Cmp: {
        auto *CI = cast<CmpInst>(I);
        NewI = B.createCmp(CI->getPredicate(), MapValue(CI->getLHS()),
                           MapValue(CI->getRHS()), CI->getName());
        break;
      }
      case Value::ValueKind::Cast: {
        auto *CA = cast<CastInst>(I);
        NewI = B.createCast(CA->getOp(), MapValue(CA->getValueOperand()),
                            CA->getType(), CA->getName());
        break;
      }
      case Value::ValueKind::Select: {
        auto *S = cast<SelectInst>(I);
        NewI = B.createSelect(MapValue(S->getCondition()),
                              MapValue(S->getTrueValue()),
                              MapValue(S->getFalseValue()), S->getName());
        break;
      }
      case Value::ValueKind::Call: {
        auto *CI = cast<CallInst>(I);
        std::vector<Value *> Args;
        for (unsigned A = 0, E = CI->getNumArgs(); A != E; ++A)
          Args.push_back(MapValue(CI->getArg(A)));
        NewI = B.createCall(CI->getCallee(), Args, CI->getName());
        break;
      }
      default:
        CGCM_UNREACHABLE("non-glueable instruction in run");
      }
      VMap[I] = NewI;
    }
    B.createRet();

    // Replace the run with a single-threaded launch, managed like any
    // other kernel launch.
    B.setInsertPoint(Run.front());
    auto *Launch = B.createKernelLaunch(GK, M.getInt64(1), M.getInt64(1),
                                        LiveIns);
    for (auto It = Run.rbegin(), E = Run.rend(); It != E; ++It) {
      (*It)->dropAllOperands();
      (*It)->eraseFromParent();
    }
    ManagementStats MS;
    manageSingleLaunch(M, Launch, MS);
  }

  Module &M;
  ModuleAnalysisManager &AM;
  DiagnosticEngine *Remarks;
  GlueStats Stats;
};

} // namespace

GlueStats cgcm::createGlueKernels(Module &M, ModuleAnalysisManager &AM,
                                  DiagnosticEngine *Remarks) {
  return GlueDriver(M, AM, Remarks).run();
}

GlueStats cgcm::createGlueKernels(Module &M, DiagnosticEngine *Remarks) {
  ModuleAnalysisManager MAM;
  return createGlueKernels(M, MAM, Remarks);
}
