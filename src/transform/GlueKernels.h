//===- transform/GlueKernels.h - Lower blocking CPU code to the GPU ----------===//
//
// Part of the CGCM reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The glue-kernel optimization (paper section 5.3): small CPU code
/// regions between two GPU functions sometimes touch mapped data and
/// thereby prevent map promotion. The performance of that code is
/// inconsequential, so lowering it to a single-threaded GPU function
/// removes the CPU's need for the data, letting the map operations rise
/// higher. Runs before alloca promotion and map promotion.
///
//===----------------------------------------------------------------------===//

#ifndef CGCM_TRANSFORM_GLUEKERNELS_H
#define CGCM_TRANSFORM_GLUEKERNELS_H

#include "ir/Module.h"

namespace cgcm {

class DiagnosticEngine;
class ModuleAnalysisManager;

struct GlueStats {
  unsigned GlueKernelsCreated = 0;
  unsigned InstructionsLowered = 0;
};

/// Maximum run length (in instructions) a glue kernel may absorb; the
/// code must be "small" for the single-threaded GPU execution to be
/// inconsequential.
inline constexpr unsigned GlueMaxInstructions = 48;

/// Outlines blocking CPU sequences inside loops that launch kernels.
/// Requires communication management to have run (candidates are found
/// through the inserted runtime calls). When \p Remarks is non-null each
/// lowering is reported as a cgcm-glue-outline remark.
GlueStats createGlueKernels(Module &M, DiagnosticEngine *Remarks = nullptr);

/// Analysis-manager variant: fetches loop forests from \p AM. Outlining
/// replaces a straight-line run of instructions with a launch call in the
/// same block — host CFGs are preserved — but the new glue kernels change
/// the module's call structure, so the pass invalidates module-level
/// analyses when it creates any.
GlueStats createGlueKernels(Module &M, ModuleAnalysisManager &AM,
                            DiagnosticEngine *Remarks = nullptr);

} // namespace cgcm

#endif // CGCM_TRANSFORM_GLUEKERNELS_H
