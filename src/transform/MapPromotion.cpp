//===- transform/MapPromotion.cpp - Hoist runtime calls out of regions ------===//
//
// Part of the CGCM reproduction project.
//
//===----------------------------------------------------------------------===//

#include "transform/MapPromotion.h"

#include "analysis/CallGraph.h"
#include "analysis/Dominators.h"
#include "analysis/LoopInfo.h"
#include "ir/IRBuilder.h"
#include "pass/Analyses.h"
#include "pass/AnalysisManager.h"
#include "ir/Verifier.h"
#include "support/Diagnostics.h"
#include "support/ErrorHandling.h"
#include "transform/Utils.h"

#include <algorithm>
#include <map>
#include <set>

using namespace cgcm;

namespace {

/// The runtime calls operating on one pointer within one region
/// (Algorithm 4's "candidate").
struct Candidate {
  Value *Ptr = nullptr;
  bool IsArray = false;
  std::vector<CallInst *> Maps;
  std::vector<CallInst *> Unmaps;
  std::vector<CallInst *> Releases;
};

class PromotionDriver {
public:
  PromotionDriver(Module &M, ModuleAnalysisManager &AM,
                  DiagnosticEngine *Remarks)
      : M(M), AM(AM), API(getOrDeclareRuntimeAPI(M)), Remarks(Remarks) {}

  PromotionStats run() {
    // Iterate to convergence: maps climb one region per round. The pass
    // only moves calls to the (declaration-only) runtime API, so the
    // call graph — and every function's CFG — stays valid throughout:
    // every round after the first is an analysis cache hit.
    bool Changed = true;
    while (Changed && Stats.Iterations < 512) {
      Changed = false;
      ++Stats.Iterations;
      CallGraph &CG = AM.getResult<CallGraphAnalysis>(M);
      for (Function *F : CG.getBottomUpOrder()) {
        if (F->isKernel())
          continue;
        if (promoteLoopsIn(*F))
          Changed = true;
        if (!CG.isRecursive(F) && promoteFunction(*F, CG))
          Changed = true;
      }
    }
    std::string Err;
    if (!verifyModule(M, &Err))
      reportFatalError("map promotion produced invalid IR: " + Err);
    return Stats;
  }

private:
  //===--------------------------------------------------------------------===//
  // Candidate discovery
  //===--------------------------------------------------------------------===//

  std::vector<Candidate>
  findCandidates(const std::vector<Instruction *> &Insts) {
    // Keyed by first appearance in program order, NOT by pointer value —
    // the emission order of hoisted maps must not depend on allocation
    // addresses (bit-identical IR across runs).
    std::map<Value *, size_t> Index;
    std::vector<Candidate> ByPtr;
    for (Instruction *I : Insts) {
      Value *P = getRuntimeCallPointer(I);
      if (!P)
        continue;
      auto *CI = cast<CallInst>(I);
      auto [It, New] = Index.try_emplace(P, ByPtr.size());
      if (New)
        ByPtr.emplace_back();
      Candidate &C = ByPtr[It->second];
      C.Ptr = P;
      const std::string &N = CI->getCallee()->getName();
      if (N == "cgcm_map" || N == "cgcm_map_array") {
        C.Maps.push_back(CI);
        C.IsArray = N == "cgcm_map_array";
      } else if (N == "cgcm_unmap" || N == "cgcm_unmap_array") {
        C.Unmaps.push_back(CI);
        C.IsArray = N == "cgcm_unmap_array";
      } else if (N == "cgcm_release" || N == "cgcm_release_array") {
        C.Releases.push_back(CI);
        C.IsArray = N == "cgcm_release_array";
      }
    }
    return ByPtr;
  }

  /// Region instructions minus the candidate's own runtime calls.
  std::vector<Instruction *>
  nonCandidateInsts(const std::vector<Instruction *> &Insts) {
    std::vector<Instruction *> Out;
    for (Instruction *I : Insts)
      if (!getRuntimeCallPointer(I))
        Out.push_back(I);
    return Out;
  }

  void emitMap(IRBuilder &B, Value *P, bool IsArray) {
    Value *P8 = P;
    TypeContext &Ctx = M.getContext();
    Type *I8Ptr = Ctx.getPointerTo(Ctx.getInt8Ty());
    if (P->getType() != I8Ptr)
      P8 = B.createCast(CastInst::Op::Bitcast, P, I8Ptr);
    B.createCall(IsArray ? API.MapArray : API.Map, {P8});
  }

  void emitUnmapRelease(IRBuilder &B, Value *P, bool IsArray) {
    Value *P8 = P;
    TypeContext &Ctx = M.getContext();
    Type *I8Ptr = Ctx.getPointerTo(Ctx.getInt8Ty());
    if (P->getType() != I8Ptr)
      P8 = B.createCast(CastInst::Op::Bitcast, P, I8Ptr);
    B.createCall(IsArray ? API.UnmapArray : API.Unmap, {P8});
    B.createCall(IsArray ? API.ReleaseArray : API.Release, {P8});
  }

  //===--------------------------------------------------------------------===//
  // Remarks
  //===--------------------------------------------------------------------===//

  /// Names the candidate pointer for a remark, looking through the i8*
  /// adapter casts and GEPs the management pass inserts.
  static std::string describePtr(const Value *P) {
    while (!P->hasName()) {
      if (const auto *C = dyn_cast<CastInst>(P))
        P = C->getValueOperand();
      else if (const auto *G = dyn_cast<GEPInst>(P))
        P = G->getPointerOperand();
      else
        break;
    }
    return P->hasName() ? "'" + P->getName() + "'" : "<unnamed pointer>";
  }

  void remarkHoist(const Function &F, const Candidate &C,
                   const std::string &Where) {
    if (!Remarks)
      return;
    Remarks->remark("cgcm-map-promotion-hoist", C.Maps.front()->getLoc(),
                    "hoisted map/unmap of " + describePtr(C.Ptr) + " " +
                        Where + " (" + std::to_string(C.Unmaps.size()) +
                        " in-region unmap(s) deleted)",
                    F.getName());
  }

  /// Rejections recur every fixpoint round; report each (function,
  /// candidate, reason) once.
  void remarkReject(const Function &F, const Candidate &C, const char *Why) {
    if (!Remarks)
      return;
    std::string Msg =
        "not promoting map of " + describePtr(C.Ptr) + ": " + Why;
    if (!SeenRejects.insert(F.getName() + "|" +
                            C.Maps.front()->getLoc().getString() + "|" + Msg)
             .second)
      return;
    Remarks->remark("cgcm-map-promotion-reject", C.Maps.front()->getLoc(),
                    Msg, F.getName());
  }

  void deleteUnmaps(Candidate &C) {
    for (CallInst *U : C.Unmaps) {
      Value *Arg = U->getArg(0);
      U->eraseFromParent();
      ++Stats.UnmapsDeleted;
      // The i8* adapter cast may now be dead.
      if (auto *Cast = dyn_cast<CastInst>(Arg))
        if (!Cast->hasUses())
          Cast->eraseFromParent();
    }
    C.Unmaps.clear();
  }

  //===--------------------------------------------------------------------===//
  // Loop regions
  //===--------------------------------------------------------------------===//

  bool promoteLoopsIn(Function &F) {
    if (F.isDeclaration())
      return false;
    LoopInfo &LI =
        AM.getFunctionAnalysisManager().getResult<LoopAnalysis>(F);
    // Innermost first so calls climb one level per round.
    std::vector<Loop *> Order;
    for (const auto &L : LI.getLoops())
      Order.push_back(L.get());
    std::sort(Order.begin(), Order.end(), [](Loop *A, Loop *B) {
      return A->getDepth() > B->getDepth();
    });
    for (Loop *L : Order)
      if (promoteLoop(F, L))
        return true; // Structures changed; caller reruns.
    return false;
  }

  bool promoteLoop(Function &F, Loop *L) {
    BasicBlock *Preheader = L->getPreheader();
    if (!Preheader)
      return false;
    auto *PreBr = dyn_cast<BranchInst>(Preheader->getTerminator());
    if (!PreBr || PreBr->isConditional())
      return false;
    // A unique exit block, reached only from inside the loop, and with no
    // phis: the sole place control resumes after the loop.
    std::vector<BasicBlock *> Exits = L->getExitBlocks();
    if (Exits.size() != 1)
      return false;
    BasicBlock *Exit = Exits[0];
    for (BasicBlock *P : Exit->predecessors())
      if (!L->contains(P))
        return false;
    if (!Exit->empty() && isa<PhiInst>(Exit->front()))
      return false;

    std::vector<Instruction *> Insts;
    for (BasicBlock *BB : L->getBlocks())
      for (const auto &I : *BB)
        Insts.push_back(I.get());

    for (Candidate &C : findCandidates(Insts)) {
      if (C.Maps.empty() || C.Unmaps.empty())
        continue; // Nothing cyclic to fix (or already promoted).
      // pointsToChanges: the pointer must be loop-invariant.
      if (auto *PI = dyn_cast<Instruction>(C.Ptr))
        if (L->contains(PI)) {
          remarkReject(F, C, "the pointer may change within the loop");
          continue;
        }
      // modOrRef: CPU code in the loop must not touch the unit.
      if (regionMayModRef(C.Ptr, nonCandidateInsts(Insts))) {
        remarkReject(F, C,
                     "CPU code in the loop may access the allocation unit");
        continue;
      }

      IRBuilder B(M);
      // The hoisted pair stands in for the original in-loop mapping;
      // keep pointing diagnostics at that source position.
      B.setCurrentLoc(C.Maps.front()->getLoc());
      B.setInsertPoint(Preheader->getTerminator());
      emitMap(B, C.Ptr, C.IsArray);
      Instruction *ExitAnchor = Exit->front();
      B.setInsertPoint(ExitAnchor);
      emitUnmapRelease(B, C.Ptr, C.IsArray);
      remarkHoist(F, C, "out of a loop");
      deleteUnmaps(C);
      ++Stats.LoopHoists;
      // Deleting calls invalidates the instruction snapshot the other
      // candidates were scanned from; let the caller rescan.
      return true;
    }
    return false;
  }

  //===--------------------------------------------------------------------===//
  // Function regions
  //===--------------------------------------------------------------------===//

  bool promoteFunction(Function &F, CallGraph &CG) {
    if (F.isDeclaration())
      return false;
    const std::vector<CallInst *> &Callers = CG.getCallers(&F);
    if (Callers.empty())
      return false;
    for (CallInst *CS : Callers) {
      Function *Caller = CS->getFunction();
      if (!Caller || Caller->isKernel())
        return false;
    }

    std::vector<Instruction *> Insts = F.instructions();
    for (Candidate &C : findCandidates(Insts)) {
      if (C.Maps.empty() || C.Unmaps.empty())
        continue;
      // The pointer must be computable in the caller: an argument of F or
      // a global. ("Some code may be copied to the parent" — the simple
      // cases below are the ones our workloads exercise.)
      const auto *Arg = dyn_cast<Argument>(C.Ptr);
      const auto *GV = dyn_cast<GlobalVariable>(C.Ptr);
      if (!Arg && !GV) {
        remarkReject(F, C, "the pointer is not computable in the caller");
        continue;
      }
      if (Arg && Arg->getParent() != &F)
        continue;
      if (regionMayModRef(C.Ptr, nonCandidateInsts(Insts))) {
        remarkReject(
            F, C, "CPU code in the function may access the allocation unit");
        continue;
      }

      for (CallInst *CS : Callers) {
        Value *CallerPtr =
            Arg ? CS->getArg(Arg->getArgNo())
                : static_cast<Value *>(const_cast<GlobalVariable *>(GV));
        IRBuilder B(M);
        B.setCurrentLoc(C.Maps.front()->getLoc());
        B.setInsertPoint(CS);
        emitMap(B, CallerPtr, C.IsArray);
        // Anchor after the call site.
        BasicBlock *BB = CS->getParent();
        auto It = BB->getIterator(CS);
        ++It;
        assert(It != BB->end() && "call terminates a block?");
        B.setInsertPoint(It->get());
        emitUnmapRelease(B, CallerPtr, C.IsArray);
      }
      remarkHoist(F, C,
                  "into " + std::to_string(Callers.size()) + " caller(s)");
      deleteUnmaps(C);
      ++Stats.FunctionHoists;
      // Snapshot invalidated (see promoteLoop); rescan from the top.
      return true;
    }
    return false;
  }

  Module &M;
  ModuleAnalysisManager &AM;
  RuntimeAPI API;
  DiagnosticEngine *Remarks;
  PromotionStats Stats;
  std::set<std::string> SeenRejects;
};

} // namespace

PromotionStats cgcm::promoteMaps(Module &M, ModuleAnalysisManager &AM,
                                 DiagnosticEngine *Remarks) {
  return PromotionDriver(M, AM, Remarks).run();
}

PromotionStats cgcm::promoteMaps(Module &M, DiagnosticEngine *Remarks) {
  ModuleAnalysisManager MAM;
  return promoteMaps(M, MAM, Remarks);
}
