//===- transform/MapPromotion.h - Hoist runtime calls out of regions --------===//
//
// Part of the CGCM reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Map promotion (paper section 5.1, Algorithm 4): for each region (a
/// loop body or a whole function) and each pointer with runtime-library
/// calls inside the region, if the pointer's points-to target cannot
/// change within the region and the region's CPU code neither modifies
/// nor references the allocation unit, then:
///
///   * a map call is copied above the region (the in-region map remains,
///     providing CPU-to-GPU pointer translation at zero transfer cost);
///   * unmap and release calls are copied below the region;
///   * the device-to-host copies inside the region (the unmaps) are
///     deleted.
///
/// Function-scope promotion hoists the calls into every caller, so maps
/// gradually climb the call graph. The pass iterates to convergence;
/// recursive functions are not eligible.
///
//===----------------------------------------------------------------------===//

#ifndef CGCM_TRANSFORM_MAPPROMOTION_H
#define CGCM_TRANSFORM_MAPPROMOTION_H

#include "ir/Module.h"

namespace cgcm {

class DiagnosticEngine;
class ModuleAnalysisManager;

struct PromotionStats {
  unsigned LoopHoists = 0;
  unsigned FunctionHoists = 0;
  unsigned UnmapsDeleted = 0;
  unsigned Iterations = 0;
};

/// Runs map promotion to convergence over the module, fetching the call
/// graph and loop forests from \p AM. The pass only moves calls to the
/// runtime API (declarations), so it preserves both the call graph and
/// every function's CFG — it invalidates nothing.
PromotionStats promoteMaps(Module &M, ModuleAnalysisManager &AM,
                           DiagnosticEngine *Remarks = nullptr);

/// Convenience overload that runs with a private analysis manager. When
/// \p Remarks is non-null the pass reports every hoist — and every
/// candidate it had to reject, with the reason — as cgcm-map-promotion-*
/// remarks.
PromotionStats promoteMaps(Module &M, DiagnosticEngine *Remarks = nullptr);

} // namespace cgcm

#endif // CGCM_TRANSFORM_MAPPROMOTION_H
