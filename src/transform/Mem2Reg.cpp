//===- transform/Mem2Reg.cpp - Promote allocas to SSA registers ------------===//
//
// Part of the CGCM reproduction project.
//
//===----------------------------------------------------------------------===//

#include "transform/Mem2Reg.h"

#include "analysis/Dominators.h"
#include "ir/Module.h"
#include "pass/Analyses.h"
#include "pass/AnalysisManager.h"
#include "transform/Utils.h"

#include <map>
#include <set>
#include <vector>

using namespace cgcm;

namespace {

/// True if every use of \p AI is a direct load or a store *to* it (not of
/// its address), and the allocated type is a promotable scalar.
bool isPromotable(const AllocaInst *AI) {
  if (AI->hasArraySize())
    return false;
  Type *Ty = AI->getAllocatedType();
  if (!Ty->isIntegerTy() && !Ty->isFloatingPointTy() && !Ty->isPointerTy())
    return false;
  for (const User *U : AI->users()) {
    if (isa<LoadInst>(U))
      continue;
    if (const auto *SI = dyn_cast<StoreInst>(U)) {
      if (SI->getValueOperand() == AI)
        return false; // Address escapes by being stored.
      continue;
    }
    return false; // GEP, cast, call argument, kernel argument, ...
  }
  return true;
}

class Promoter {
public:
  Promoter(Function &F, const DominatorTree &DT) : F(F), DT(DT) {
    for (BasicBlock *BB : DT.getReversePostOrder())
      if (BasicBlock *P = DT.getIDom(BB))
        DomChildren[P].push_back(BB);
  }

  unsigned run() {
    std::vector<AllocaInst *> Candidates;
    for (Instruction *I : F.instructions())
      if (auto *AI = dyn_cast<AllocaInst>(I))
        if (DT.isReachable(AI->getParent()) && isPromotable(AI))
          Candidates.push_back(AI);
    if (Candidates.empty())
      return 0;

    for (unsigned Idx = 0; Idx != Candidates.size(); ++Idx)
      AllocaIndex[Candidates[Idx]] = Idx;
    Allocas = Candidates;
    CurrentDef.resize(Allocas.size());

    insertPhis();
    rename(F.getEntryBlock(),
           std::vector<Value *>(Allocas.size(), nullptr));
    cleanup();
    return Allocas.size();
  }

private:
  void insertPhis() {
    Module &M = *F.getParent();
    for (AllocaInst *AI : Allocas) {
      // Blocks containing stores (defs).
      std::set<BasicBlock *> DefBlocks;
      for (User *U : AI->users())
        if (auto *SI = dyn_cast<StoreInst>(U))
          DefBlocks.insert(SI->getParent());

      // Iterated dominance frontier.
      std::set<BasicBlock *> PhiBlocks;
      std::vector<BasicBlock *> Work(DefBlocks.begin(), DefBlocks.end());
      while (!Work.empty()) {
        BasicBlock *BB = Work.back();
        Work.pop_back();
        for (BasicBlock *FB : DT.getFrontier(BB))
          if (PhiBlocks.insert(FB).second)
            Work.push_back(FB);
      }

      for (BasicBlock *BB : PhiBlocks) {
        auto Phi = std::make_unique<PhiInst>(AI->getAllocatedType(),
                                             AI->getName());
        PhiToAlloca[Phi.get()] = AllocaIndex[AI];
        BB->insertBefore(BB->front(), std::move(Phi));
      }
      (void)M;
    }
  }

  Value *zeroFor(Type *Ty) {
    Module &M = *F.getParent();
    if (auto *IT = dyn_cast<IntegerType>(Ty))
      return M.getConstantInt(IT, 0);
    if (Ty->isFloatingPointTy())
      return M.getConstantFP(Ty, 0.0);
    return M.getNullPtr(cast<PointerType>(Ty));
  }

  void rename(BasicBlock *BB, std::vector<Value *> Defs) {
    // Phase 1: phis in this block define new values.
    for (const auto &I : *BB) {
      auto *P = dyn_cast<PhiInst>(I.get());
      if (!P)
        break;
      auto It = PhiToAlloca.find(P);
      if (It != PhiToAlloca.end())
        Defs[It->second] = P;
    }
    // Phase 2: rewrite loads, record stores.
    std::vector<Instruction *> ToErase;
    for (const auto &I : *BB) {
      if (auto *LI = dyn_cast<LoadInst>(I.get())) {
        auto *AI = dyn_cast<AllocaInst>(LI->getPointerOperand());
        if (!AI)
          continue;
        auto It = AllocaIndex.find(AI);
        if (It == AllocaIndex.end())
          continue;
        Value *V = Defs[It->second];
        if (!V)
          V = zeroFor(AI->getAllocatedType());
        LI->replaceAllUsesWith(V);
        ToErase.push_back(LI);
        continue;
      }
      if (auto *SI = dyn_cast<StoreInst>(I.get())) {
        auto *AI = dyn_cast<AllocaInst>(SI->getPointerOperand());
        if (!AI)
          continue;
        auto It = AllocaIndex.find(AI);
        if (It == AllocaIndex.end())
          continue;
        Defs[It->second] = SI->getValueOperand();
        ToErase.push_back(SI);
      }
    }
    for (Instruction *I : ToErase)
      I->eraseFromParent();

    // Phase 3: feed successor phis.
    for (BasicBlock *Succ : BB->successors()) {
      for (const auto &I : *Succ) {
        auto *P = dyn_cast<PhiInst>(I.get());
        if (!P)
          break;
        auto It = PhiToAlloca.find(P);
        if (It == PhiToAlloca.end())
          continue;
        Value *V = Defs[It->second];
        if (!V)
          V = zeroFor(P->getType());
        P->addIncoming(V, BB);
      }
    }

    // Phase 4: recurse into dominator-tree children.
    auto It = DomChildren.find(BB);
    if (It != DomChildren.end())
      for (BasicBlock *Child : It->second)
        rename(Child, Defs);
  }

  void cleanup() {
    // Remove inserted phis that no real (non-inserted-phi) code uses,
    // including mutually-referencing dead phi cycles: mark phis reachable
    // from real uses, then delete the rest together.
    std::set<const PhiInst *> Live;
    std::vector<const PhiInst *> Work;
    for (const auto &[P, Idx] : PhiToAlloca) {
      (void)Idx;
      for (const User *U : P->users()) {
        const auto *UP = dyn_cast<PhiInst>(U);
        if (!UP || !PhiToAlloca.count(UP)) {
          if (Live.insert(P).second)
            Work.push_back(P);
          break;
        }
      }
    }
    while (!Work.empty()) {
      const PhiInst *P = Work.back();
      Work.pop_back();
      // Everything a live phi reads must stay live.
      for (const Value *Op : P->operands()) {
        const auto *OP = dyn_cast<PhiInst>(Op);
        if (OP && PhiToAlloca.count(OP) && Live.insert(OP).second)
          Work.push_back(OP);
      }
    }
    std::vector<PhiInst *> Dead;
    for (const auto &[P, Idx] : PhiToAlloca) {
      (void)Idx;
      if (!Live.count(P))
        Dead.push_back(const_cast<PhiInst *>(P));
    }
    for (PhiInst *P : Dead)
      P->dropAllOperands();
    for (PhiInst *P : Dead) {
      assert(!P->hasUses() && "dead phi still used by live code");
      P->eraseFromParent();
    }
    for (AllocaInst *AI : Allocas) {
      assert(!AI->hasUses() && "promoted alloca still has uses");
      AI->eraseFromParent();
    }
  }

  Function &F;
  const DominatorTree &DT;
  std::map<BasicBlock *, std::vector<BasicBlock *>> DomChildren;
  std::vector<AllocaInst *> Allocas;
  std::map<const AllocaInst *, unsigned> AllocaIndex;
  std::map<const PhiInst *, unsigned> PhiToAlloca;
  std::vector<Value *> CurrentDef;
};

} // namespace

unsigned cgcm::promoteAllocasToRegisters(Function &F) {
  if (F.isDeclaration())
    return 0;
  // Dead blocks would keep loads/stores of promoted allocas alive and are
  // invisible to the dominator-tree renaming walk.
  removeUnreachableBlocks(F);
  DominatorTree DT(F);
  return Promoter(F, DT).run();
}

unsigned cgcm::promoteAllocasToRegisters(Module &M) {
  unsigned N = 0;
  for (const auto &F : M.functions())
    N += promoteAllocasToRegisters(*F);
  return N;
}

unsigned cgcm::promoteAllocasToRegisters(Module &M,
                                         ModuleAnalysisManager &AM) {
  FunctionAnalysisManager &FAM = AM.getFunctionAnalysisManager();
  unsigned N = 0;
  for (const auto &F : M.functions()) {
    if (F->isDeclaration())
      continue;
    if (removeUnreachableBlocks(*F))
      FAM.invalidate(*F);
    // Promotion rewrites instructions only, so the tree computed here
    // stays cached for downstream passes.
    N += Promoter(*F, FAM.getResult<DominatorTreeAnalysis>(*F)).run();
  }
  return N;
}
