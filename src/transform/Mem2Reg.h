//===- transform/Mem2Reg.h - Promote allocas to SSA registers --------------===//
//
// Part of the CGCM reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Promotes non-escaping scalar allocas (the frontend's -O0 spill slots)
/// to SSA values with phi nodes, using iterated dominance frontiers. After
/// this pass the only remaining allocas are *escaping* stack variables —
/// precisely the ones CGCM's declareAlloca must register (section 3.1) and
/// alloca promotion hoists (section 5.2).
///
//===----------------------------------------------------------------------===//

#ifndef CGCM_TRANSFORM_MEM2REG_H
#define CGCM_TRANSFORM_MEM2REG_H

namespace cgcm {

class Function;
class Module;
class ModuleAnalysisManager;

/// Promotes allocas in \p F. Returns the number of promoted allocas.
unsigned promoteAllocasToRegisters(Function &F);

/// Runs alloca promotion over every defined function.
unsigned promoteAllocasToRegisters(Module &M);

/// Analysis-manager variant: unreachable-block removal invalidates the
/// mutated function first, then promotion runs against the cached
/// dominator tree — seeding it for later passes, since promotion itself
/// rewrites only instructions and preserves the CFG.
unsigned promoteAllocasToRegisters(Module &M, ModuleAnalysisManager &AM);

} // namespace cgcm

#endif // CGCM_TRANSFORM_MEM2REG_H
