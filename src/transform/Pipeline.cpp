//===- transform/Pipeline.cpp - The CGCM compilation pipeline ----------------===//
//
// Part of the CGCM reproduction project.
//
//===----------------------------------------------------------------------===//

#include "transform/Pipeline.h"

#include "analysis/checkers/Checkers.h"
#include "ir/Verifier.h"
#include "support/ErrorHandling.h"
#include "transform/Mem2Reg.h"

#include <sstream>

using namespace cgcm;

PipelineResult cgcm::runCGCMPipeline(Module &M, const PipelineOptions &Opts) {
  PipelineResult R;
  R.AllocasPromotedToSSA = promoteAllocasToRegisters(M);

  if (Opts.Parallelize)
    R.Doall = parallelizeDOALLLoops(M, Opts.Remarks);

  if (Opts.Manage)
    R.Mgmt = insertCommunicationManagement(M);

  if (Opts.Manage && Opts.Optimize) {
    // Paper schedule: glue kernels, then alloca promotion, then map
    // promotion (each earlier pass widens the later passes' reach).
    if (Opts.EnableGlueKernels)
      R.Glue = createGlueKernels(M, Opts.Remarks);
    if (Opts.EnableAllocaPromotion)
      R.AllocaPromo = promoteAllocasUpCallGraph(M, Opts.Remarks);
    if (Opts.EnableMapPromotion)
      R.MapPromo = promoteMaps(M, Opts.Remarks);
    if (Opts.EnableSimplify)
      R.Simplify = simplifyModule(M);
  }

  std::string Err;
  if (!verifyModule(M, &Err))
    reportFatalError("CGCM pipeline produced invalid IR: " + Err);

  // Defense in depth: the parallelizer proved loop iterations
  // independent before outlining; re-prove the same property on the
  // grid-stride kernels it produced. Any finding — even an unprovable
  // one — means a pass broke an invariant the proof relied on.
  if (Opts.VerifyParallelization) {
    DiagnosticEngine DE;
    for (Function *K : R.Doall.Kernels)
      checkKernelRaces(M, *K, RaceCheckMode::Strict, DE);
    if (!DE.empty()) {
      std::ostringstream OS;
      DE.print(OS);
      reportFatalError("CGCM pipeline produced a kernel that fails the "
                       "independence re-derivation:\n" +
                       OS.str());
    }
  }
  return R;
}
