//===- transform/Pipeline.cpp - The CGCM compilation pipeline ----------------===//
//
// Part of the CGCM reproduction project.
//
//===----------------------------------------------------------------------===//

#include "transform/Pipeline.h"

#include "analysis/checkers/Checkers.h"
#include "ir/Verifier.h"
#include "pass/Analyses.h"
#include "pass/StandardInstrumentations.h"
#include "support/Diagnostics.h"
#include "support/ErrorHandling.h"
#include "transform/Mem2Reg.h"

#include <cctype>
#include <iostream>
#include <memory>
#include <sstream>

using namespace cgcm;

//===----------------------------------------------------------------------===//
// Pass definitions
//===----------------------------------------------------------------------===//
//
// Each transform becomes a thin ModulePass that accumulates its stats
// into the shared PipelineResult (summed across fixpoint reruns) and
// reports what it preserved. The preservation claims are load-bearing:
// see each pass's comment and docs/PassManager.md.

namespace {

/// SSA construction. Unreachable-block removal invalidates mutated
/// functions inside the callee; promotion itself rewrites instructions
/// only, so the dominator trees computed during renaming stay cached.
/// Dead blocks may have held calls, so the call graph is not preserved.
class Mem2RegPass : public ModulePass {
public:
  Mem2RegPass(PipelineResult &R) : R(R) {}
  const char *name() const override { return "mem2reg"; }
  PassExecResult run(Module &M, ModuleAnalysisManager &AM) override {
    unsigned N = promoteAllocasToRegisters(M, AM);
    R.AllocasPromotedToSSA += N;
    PassExecResult Res;
    Res.Changed = N > 0;
    Res.PA = PreservedAnalyses::none();
    Res.PA.preserve<DominatorTreeAnalysis>();
    Res.PA.preserve<LoopAnalysis>();
    return Res;
  }

private:
  PipelineResult &R;
};

/// DOALL parallelization restructures host CFGs and creates kernels;
/// the callee invalidates precisely (per function after each outlined
/// loop, call graph when kernels appear), so nothing further to drop.
class DOALLPass : public ModulePass {
public:
  DOALLPass(PipelineResult &R, DiagnosticEngine *Remarks)
      : R(R), Remarks(Remarks) {}
  const char *name() const override { return "doall"; }
  PassExecResult run(Module &M, ModuleAnalysisManager &AM) override {
    DOALLStats S = parallelizeDOALLLoops(M, AM, Remarks);
    R.Doall.KernelsCreated += S.KernelsCreated;
    R.Doall.LoopsConsidered += S.LoopsConsidered;
    R.Doall.LoopsRejected += S.LoopsRejected;
    R.Doall.Kernels.insert(R.Doall.Kernels.end(), S.Kernels.begin(),
                           S.Kernels.end());
    PassExecResult Res;
    Res.Changed = S.KernelsCreated > 0;
    Res.PA = PreservedAnalyses::all();
    return Res;
  }

private:
  PipelineResult &R;
  DiagnosticEngine *Remarks;
};

/// Communication management wraps launches in runtime calls — calls to
/// declarations, inserted without touching any CFG — so every cached
/// analysis survives.
class CommPass : public ModulePass {
public:
  CommPass(PipelineResult &R) : R(R) {}
  const char *name() const override { return "comm"; }
  PassExecResult run(Module &M, ModuleAnalysisManager &) override {
    ManagementStats S = insertCommunicationManagement(M);
    R.Mgmt.LaunchesManaged += S.LaunchesManaged;
    R.Mgmt.MapsInserted += S.MapsInserted;
    R.Mgmt.MapArraysInserted += S.MapArraysInserted;
    R.Mgmt.GlobalsDeclared += S.GlobalsDeclared;
    R.Mgmt.AllocasDeclared += S.AllocasDeclared;
    PassExecResult Res;
    Res.Changed = S.LaunchesManaged + S.GlobalsDeclared + S.AllocasDeclared > 0;
    Res.PA = PreservedAnalyses::all();
    return Res;
  }

private:
  PipelineResult &R;
};

/// Glue-kernel outlining swaps straight-line instruction runs for a
/// launch inside the same block — host loop forests survive — and the
/// callee drops the call graph itself when it creates kernels.
class GluePass : public ModulePass {
public:
  GluePass(PipelineResult &R, DiagnosticEngine *Remarks)
      : R(R), Remarks(Remarks) {}
  const char *name() const override { return "glue"; }
  PassExecResult run(Module &M, ModuleAnalysisManager &AM) override {
    GlueStats S = createGlueKernels(M, AM, Remarks);
    R.Glue.GlueKernelsCreated += S.GlueKernelsCreated;
    R.Glue.InstructionsLowered += S.InstructionsLowered;
    PassExecResult Res;
    Res.Changed = S.GlueKernelsCreated > 0;
    Res.PA = PreservedAnalyses::all();
    return Res;
  }

private:
  PipelineResult &R;
  DiagnosticEngine *Remarks;
};

/// Alloca hoisting rewrites signatures and call sites but adds no calls
/// to defined functions and no control flow, so everything survives.
class AllocaPromotePass : public ModulePass {
public:
  AllocaPromotePass(PipelineResult &R, DiagnosticEngine *Remarks)
      : R(R), Remarks(Remarks) {}
  const char *name() const override { return "alloca-promote"; }
  PassExecResult run(Module &M, ModuleAnalysisManager &AM) override {
    AllocaPromotionStats S = promoteAllocasUpCallGraph(M, AM, Remarks);
    R.AllocaPromo.AllocasHoisted += S.AllocasHoisted;
    R.AllocaPromo.Iterations += S.Iterations;
    PassExecResult Res;
    Res.Changed = S.AllocasHoisted > 0;
    Res.PA = PreservedAnalyses::all();
    return Res;
  }

private:
  PipelineResult &R;
  DiagnosticEngine *Remarks;
};

/// Map promotion copies/deletes calls to the (declaration-only) runtime
/// API; neither the call graph nor any CFG changes.
class MapPromotePass : public ModulePass {
public:
  MapPromotePass(PipelineResult &R, DiagnosticEngine *Remarks)
      : R(R), Remarks(Remarks) {}
  const char *name() const override { return "map-promote"; }
  PassExecResult run(Module &M, ModuleAnalysisManager &AM) override {
    PromotionStats S = promoteMaps(M, AM, Remarks);
    R.MapPromo.LoopHoists += S.LoopHoists;
    R.MapPromo.FunctionHoists += S.FunctionHoists;
    R.MapPromo.UnmapsDeleted += S.UnmapsDeleted;
    R.MapPromo.Iterations += S.Iterations;
    PassExecResult Res;
    Res.Changed = S.LoopHoists + S.FunctionHoists + S.UnmapsDeleted > 0;
    Res.PA = PreservedAnalyses::all();
    return Res;
  }

private:
  PipelineResult &R;
  DiagnosticEngine *Remarks;
};

/// Cleanup folds branches and deletes blocks — preserves nothing.
class SimplifyPass : public ModulePass {
public:
  SimplifyPass(PipelineResult &R) : R(R) {}
  const char *name() const override { return "simplify"; }
  PassExecResult run(Module &M, ModuleAnalysisManager &) override {
    SimplifyStats S = simplifyModule(M);
    R.Simplify.ConstantsFolded += S.ConstantsFolded;
    R.Simplify.BranchesSimplified += S.BranchesSimplified;
    R.Simplify.DeadInstructionsRemoved += S.DeadInstructionsRemoved;
    R.Simplify.BlocksRemoved += S.BlocksRemoved;
    PassExecResult Res;
    Res.Changed = S.ConstantsFolded + S.BranchesSimplified +
                      S.DeadInstructionsRemoved + S.BlocksRemoved >
                  0;
    Res.PA = PreservedAnalyses::none();
    return Res;
  }

private:
  PipelineResult &R;
};

/// Structural verification; fatal on invalid IR.
class VerifyPass : public ModulePass {
public:
  const char *name() const override { return "verify"; }
  PassExecResult run(Module &M, ModuleAnalysisManager &) override {
    std::string Err;
    if (!verifyModule(M, &Err))
      reportFatalError("CGCM pipeline produced invalid IR: " + Err);
    return {PreservedAnalyses::all(), false};
  }
};

/// Defense in depth: the parallelizer proved loop iterations independent
/// before outlining; re-prove the same property on the grid-stride
/// kernels it produced. Any finding — even an unprovable one — means a
/// pass broke an invariant the proof relied on.
class VerifyParallelizationPass : public ModulePass {
public:
  VerifyParallelizationPass(PipelineResult &R) : R(R) {}
  const char *name() const override { return "verify-par"; }
  PassExecResult run(Module &M, ModuleAnalysisManager &) override {
    DiagnosticEngine DE;
    for (Function *K : R.Doall.Kernels)
      checkKernelRaces(M, *K, RaceCheckMode::Strict, DE);
    if (!DE.empty()) {
      std::ostringstream OS;
      DE.print(OS);
      reportFatalError("CGCM pipeline produced a kernel that fails the "
                       "independence re-derivation:\n" +
                       OS.str());
    }
    return {PreservedAnalyses::all(), false};
  }

private:
  PipelineResult &R;
};

//===----------------------------------------------------------------------===//
// Pipeline parser
//===----------------------------------------------------------------------===//

class PipelineParser {
public:
  PipelineParser(const std::string &Text, PipelineResult &R,
                 DiagnosticEngine *Remarks)
      : Text(Text), R(R), Remarks(Remarks) {}

  bool parse(PassManager &PM) {
    if (!parseList(PM))
      return false;
    skipSpace();
    if (Pos != Text.size())
      return fail("unexpected '" + std::string(1, Text[Pos]) + "'");
    if (PM.empty())
      return fail("empty pipeline");
    return true;
  }

  const std::string &error() const { return Err; }

private:
  bool fail(const std::string &Msg) {
    Err = Msg + " at position " + std::to_string(Pos);
    return false;
  }

  void skipSpace() {
    while (Pos < Text.size() && std::isspace(static_cast<unsigned char>(
                                    Text[Pos])))
      ++Pos;
  }

  std::string parseName() {
    skipSpace();
    size_t Start = Pos;
    while (Pos < Text.size() &&
           (std::isalnum(static_cast<unsigned char>(Text[Pos])) ||
            Text[Pos] == '-' || Text[Pos] == '_'))
      ++Pos;
    return Text.substr(Start, Pos - Start);
  }

  /// Parses a comma-separated pass list into \p PM, stopping (without
  /// consuming) at ')' or end of input.
  bool parseList(PassManager &PM) {
    while (true) {
      std::string Name = parseName();
      if (Name.empty())
        return fail("expected pass name");
      skipSpace();
      if (Name == "fixpoint") {
        if (Pos == Text.size() || Text[Pos] != '(')
          return fail("expected '(' after 'fixpoint'");
        ++Pos;
        PassManager Inner;
        if (!parseList(Inner))
          return false;
        skipSpace();
        if (Pos == Text.size() || Text[Pos] != ')')
          return fail("expected ')' closing 'fixpoint('");
        ++Pos;
        if (Inner.empty())
          return fail("'fixpoint()' needs at least one inner pass");
        PM.addPass(std::make_unique<FixpointPass>(std::move(Inner)));
      } else {
        std::unique_ptr<ModulePass> P = createPass(Name);
        if (!P)
          return fail("unknown pass '" + Name + "'");
        PM.addPass(std::move(P));
      }
      skipSpace();
      if (Pos < Text.size() && Text[Pos] == ',') {
        ++Pos;
        continue;
      }
      return true;
    }
  }

  std::unique_ptr<ModulePass> createPass(const std::string &Name) {
    if (Name == "mem2reg")
      return std::make_unique<Mem2RegPass>(R);
    if (Name == "doall")
      return std::make_unique<DOALLPass>(R, Remarks);
    if (Name == "comm")
      return std::make_unique<CommPass>(R);
    if (Name == "glue")
      return std::make_unique<GluePass>(R, Remarks);
    if (Name == "alloca-promote")
      return std::make_unique<AllocaPromotePass>(R, Remarks);
    if (Name == "map-promote")
      return std::make_unique<MapPromotePass>(R, Remarks);
    if (Name == "simplify")
      return std::make_unique<SimplifyPass>(R);
    if (Name == "verify")
      return std::make_unique<VerifyPass>();
    if (Name == "verify-par")
      return std::make_unique<VerifyParallelizationPass>(R);
    return nullptr;
  }

  const std::string &Text;
  size_t Pos = 0;
  PipelineResult &R;
  DiagnosticEngine *Remarks;
  std::string Err;
};

} // namespace

//===----------------------------------------------------------------------===//
// Public entry points
//===----------------------------------------------------------------------===//

bool cgcm::parsePassPipeline(PassManager &PM, const std::string &Text,
                             PipelineResult &R, DiagnosticEngine *Remarks,
                             std::string *Err) {
  PipelineParser P(Text, R, Remarks);
  if (P.parse(PM))
    return true;
  if (Err)
    *Err = P.error();
  return false;
}

std::string cgcm::buildDefaultPipelineText(const PipelineOptions &Opts) {
  std::string S = "mem2reg";
  if (Opts.Parallelize)
    S += ",doall";
  if (Opts.Manage)
    S += ",comm";
  if (Opts.Manage && Opts.Optimize) {
    // Paper schedule: glue kernels, then alloca promotion, then map
    // promotion (each earlier pass widens the later passes' reach),
    // swept to convergence. Each pass converges internally, so the
    // second sweep normally confirms quiescence out of the analysis
    // cache without changing anything.
    std::string Group;
    if (Opts.EnableGlueKernels)
      Group += "glue";
    if (Opts.EnableAllocaPromotion)
      Group += std::string(Group.empty() ? "" : ",") + "alloca-promote";
    if (Opts.EnableMapPromotion)
      Group += std::string(Group.empty() ? "" : ",") + "map-promote";
    if (!Group.empty())
      S += ",fixpoint(" + Group + ")";
    if (Opts.EnableSimplify)
      S += ",simplify";
  }
  S += ",verify";
  if (Opts.VerifyParallelization)
    S += ",verify-par";
  return S;
}

PipelineResult cgcm::runPassPipeline(Module &M, const std::string &Text,
                                     const PipelineRunOptions &RunOpts) {
  PipelineResult R;
  PassManager PM;
  std::string Err;
  if (!parsePassPipeline(PM, Text, R, RunOpts.Remarks, &Err))
    reportFatalError("invalid pass pipeline '" + Text + "': " + Err);

  ModuleAnalysisManager PrivateAM;
  ModuleAnalysisManager &AM = RunOpts.AM ? *RunOpts.AM : PrivateAM;

  PassInstrumentation PI;
  // Always-on metrics registry rows (per-pass wall time / run counts and
  // analysis-cache deltas); the opt-in handlers below remain flag-gated.
  MetricsPassHandler Metrics;
  Metrics.registerCallbacks(PI);
  Metrics.captureCacheBaseline(AM);
  TimePassesHandler Timer;
  if (RunOpts.TimePasses)
    Timer.registerCallbacks(PI);
  VerifyEachHandler VerifyEach;
  if (RunOpts.VerifyEach) {
    VerifyEach.registerCallbacks(PI);
    AM.setStaleCheckingEnabled(true);
  }
  std::unique_ptr<PrintAfterHandler> Printer;
  if (!RunOpts.PrintAfter.empty()) {
    Printer = std::make_unique<PrintAfterHandler>(
        RunOpts.PrintAfter,
        RunOpts.PrintAfterStream ? *RunOpts.PrintAfterStream : std::cout);
    Printer->registerCallbacks(PI);
  }
  std::unique_ptr<TraceSpanHandler> Spans;
  if (RunOpts.Trace) {
    Spans = std::make_unique<TraceSpanHandler>(*RunOpts.Trace);
    Spans->registerCallbacks(PI);
  }

  AM.setInstrumentation(&PI);
  PM.run(M, AM);
  AM.setInstrumentation(nullptr);
  Metrics.flushCacheStats(AM);

  if (RunOpts.TimePasses)
    Timer.print(RunOpts.TimePassesStream ? *RunOpts.TimePassesStream
                                         : std::cerr,
                AM);
  return R;
}

PipelineResult cgcm::runCGCMPipeline(Module &M, const PipelineOptions &Opts) {
  PipelineRunOptions RunOpts;
  RunOpts.Remarks = Opts.Remarks;
  return runPassPipeline(M, buildDefaultPipelineText(Opts), RunOpts);
}
