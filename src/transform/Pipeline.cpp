//===- transform/Pipeline.cpp - The CGCM compilation pipeline ----------------===//
//
// Part of the CGCM reproduction project.
//
//===----------------------------------------------------------------------===//

#include "transform/Pipeline.h"

#include "ir/Verifier.h"
#include "support/ErrorHandling.h"
#include "transform/Mem2Reg.h"

using namespace cgcm;

PipelineResult cgcm::runCGCMPipeline(Module &M, const PipelineOptions &Opts) {
  PipelineResult R;
  R.AllocasPromotedToSSA = promoteAllocasToRegisters(M);

  if (Opts.Parallelize)
    R.Doall = parallelizeDOALLLoops(M);

  if (Opts.Manage)
    R.Mgmt = insertCommunicationManagement(M);

  if (Opts.Manage && Opts.Optimize) {
    // Paper schedule: glue kernels, then alloca promotion, then map
    // promotion (each earlier pass widens the later passes' reach).
    if (Opts.EnableGlueKernels)
      R.Glue = createGlueKernels(M);
    if (Opts.EnableAllocaPromotion)
      R.AllocaPromo = promoteAllocasUpCallGraph(M);
    if (Opts.EnableMapPromotion)
      R.MapPromo = promoteMaps(M);
    if (Opts.EnableSimplify)
      R.Simplify = simplifyModule(M);
  }

  std::string Err;
  if (!verifyModule(M, &Err))
    reportFatalError("CGCM pipeline produced invalid IR: " + Err);
  return R;
}
