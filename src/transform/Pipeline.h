//===- transform/Pipeline.h - The CGCM compilation pipeline -----------------===//
//
// Part of the CGCM reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Drives the paper's compilation schedule (section 5.3): SSA
/// construction, DOALL parallelization, communication management, then —
/// because glue kernels and alloca promotion improve map promotion's
/// applicability, and glue kernels can create new alloca-promotion
/// opportunities — glue kernels, alloca promotion, and map promotion
/// last, iterating to convergence.
///
/// The schedule is declarative (docs/PassManager.md): a pipeline is a
/// textual pass list parsed into a PassManager, e.g.
///
///   mem2reg,doall,comm,fixpoint(glue,alloca-promote,map-promote),simplify
///
/// `fixpoint(...)` reruns its inner pipeline until a full sweep changes
/// nothing. `runCGCMPipeline` is a thin wrapper that builds the default
/// text from PipelineOptions and runs it.
///
//===----------------------------------------------------------------------===//

#ifndef CGCM_TRANSFORM_PIPELINE_H
#define CGCM_TRANSFORM_PIPELINE_H

#include "pass/PassManager.h"
#include "transform/AllocaPromotion.h"
#include "transform/CommManagement.h"
#include "transform/DOALL.h"
#include "transform/GlueKernels.h"
#include "transform/MapPromotion.h"
#include "transform/Simplify.h"

#include <iosfwd>
#include <string>

namespace cgcm {

class TraceCollector;

struct PipelineOptions {
  /// Run the DOALL parallelizer (off when the input is manually
  /// parallelized with `launch`).
  bool Parallelize = true;
  /// Insert communication management (map/unmap/release).
  bool Manage = true;
  /// Run the communication optimizations.
  bool Optimize = true;
  /// Ablation switches for the individual optimizations.
  bool EnableGlueKernels = true;
  bool EnableAllocaPromotion = true;
  bool EnableMapPromotion = true;
  /// Final cleanup: constant folding + dead-code elimination.
  bool EnableSimplify = true;
  /// Defense in depth: after the pipeline, re-derive cross-thread
  /// independence for every kernel the DOALL parallelizer produced and
  /// abort on any finding (see docs/StaticAnalysis.md).
  bool VerifyParallelization = true;
  /// When non-null, the transform passes report what they did (and what
  /// they rejected, with reasons) as Remark-severity diagnostics here
  /// (surfaced by cgcmc --remarks; see docs/Observability.md).
  DiagnosticEngine *Remarks = nullptr;
};

struct PipelineResult {
  unsigned AllocasPromotedToSSA = 0;
  DOALLStats Doall;
  ManagementStats Mgmt;
  GlueStats Glue;
  AllocaPromotionStats AllocaPromo;
  PromotionStats MapPromo;
  SimplifyStats Simplify;
};

/// Builds the `--passes=` text for the paper schedule under \p Opts —
/// what runCGCMPipeline executes. With everything enabled:
///   mem2reg,doall,comm,fixpoint(glue,alloca-promote,map-promote),
///   simplify,verify,verify-par
std::string buildDefaultPipelineText(const PipelineOptions &Opts);

/// Parses \p Text into \p PM.
///
///   pipeline := pass (',' pass)*
///   pass     := NAME | 'fixpoint' '(' pipeline ')'
///
/// Known names: mem2reg, doall, comm, glue, alloca-promote, map-promote,
/// simplify, verify, verify-par. Whitespace around names and separators
/// is ignored. The constructed passes accumulate statistics into \p R
/// and report remarks to \p Remarks (may be null); both must outlive the
/// pipeline run. Returns false and fills \p Err on a malformed string or
/// unknown pass name.
bool parsePassPipeline(PassManager &PM, const std::string &Text,
                       PipelineResult &R, DiagnosticEngine *Remarks,
                       std::string *Err = nullptr);

/// Instrumentation and plumbing for one pipeline execution; every field
/// is optional.
struct PipelineRunOptions {
  /// Transform remarks (same as PipelineOptions::Remarks).
  DiagnosticEngine *Remarks = nullptr;
  /// Print the per-pass timing + analysis-cache table after the run.
  bool TimePasses = false;
  /// Destination for the --time-passes report (std::cerr when null).
  std::ostream *TimePassesStream = nullptr;
  /// Verify the module after every pass and enable stale-analysis
  /// fingerprint checking in the analysis manager.
  bool VerifyEach = false;
  /// Dump IR after the named pass ("*" = after every pass); empty = off.
  std::string PrintAfter;
  /// Destination for --print-after dumps (std::cout when null).
  std::ostream *PrintAfterStream = nullptr;
  /// When non-null, one Complete span per pass execution.
  TraceCollector *Trace = nullptr;
  /// External analysis manager — lets callers inspect cache counters
  /// after the run (a private manager is used when null).
  ModuleAnalysisManager *AM = nullptr;
};

/// Parses \p Text and runs it over \p M with the requested
/// instrumentation attached. Fatal on a malformed pipeline string.
PipelineResult runPassPipeline(Module &M, const std::string &Text,
                               const PipelineRunOptions &RunOpts = {});

/// Runs the paper schedule configured by \p Opts — equivalent to
/// runPassPipeline(M, buildDefaultPipelineText(Opts)).
PipelineResult runCGCMPipeline(Module &M,
                               const PipelineOptions &Opts = PipelineOptions());

} // namespace cgcm

#endif // CGCM_TRANSFORM_PIPELINE_H
