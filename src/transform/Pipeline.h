//===- transform/Pipeline.h - The CGCM compilation pipeline -----------------===//
//
// Part of the CGCM reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Drives the paper's compilation schedule (section 5.3): SSA
/// construction, DOALL parallelization, communication management, then —
/// because glue kernels and alloca promotion improve map promotion's
/// applicability, and glue kernels can create new alloca-promotion
/// opportunities — glue kernels, alloca promotion, and map promotion
/// last, iterating internally to convergence.
///
//===----------------------------------------------------------------------===//

#ifndef CGCM_TRANSFORM_PIPELINE_H
#define CGCM_TRANSFORM_PIPELINE_H

#include "transform/AllocaPromotion.h"
#include "transform/CommManagement.h"
#include "transform/DOALL.h"
#include "transform/GlueKernels.h"
#include "transform/MapPromotion.h"
#include "transform/Simplify.h"

namespace cgcm {

struct PipelineOptions {
  /// Run the DOALL parallelizer (off when the input is manually
  /// parallelized with `launch`).
  bool Parallelize = true;
  /// Insert communication management (map/unmap/release).
  bool Manage = true;
  /// Run the communication optimizations.
  bool Optimize = true;
  /// Ablation switches for the individual optimizations.
  bool EnableGlueKernels = true;
  bool EnableAllocaPromotion = true;
  bool EnableMapPromotion = true;
  /// Final cleanup: constant folding + dead-code elimination.
  bool EnableSimplify = true;
  /// Defense in depth: after the pipeline, re-derive cross-thread
  /// independence for every kernel the DOALL parallelizer produced and
  /// abort on any finding (see docs/StaticAnalysis.md).
  bool VerifyParallelization = true;
  /// When non-null, the transform passes report what they did (and what
  /// they rejected, with reasons) as Remark-severity diagnostics here
  /// (surfaced by cgcmc --remarks; see docs/Observability.md).
  DiagnosticEngine *Remarks = nullptr;
};

struct PipelineResult {
  unsigned AllocasPromotedToSSA = 0;
  DOALLStats Doall;
  ManagementStats Mgmt;
  GlueStats Glue;
  AllocaPromotionStats AllocaPromo;
  PromotionStats MapPromo;
  SimplifyStats Simplify;
};

/// Runs the configured pipeline over \p M.
PipelineResult runCGCMPipeline(Module &M,
                               const PipelineOptions &Opts = PipelineOptions());

} // namespace cgcm

#endif // CGCM_TRANSFORM_PIPELINE_H
