//===- transform/Simplify.cpp - Constant folding and dead-code removal --------===//
//
// Part of the CGCM reproduction project.
//
//===----------------------------------------------------------------------===//

#include "transform/Simplify.h"

#include "ir/Verifier.h"
#include "support/ErrorHandling.h"
#include "transform/Utils.h"

#include <cmath>

using namespace cgcm;

namespace {

/// Folds a binary operation over integer constants; null if inapplicable
/// (notably division by zero stays for the executor to trap on).
Value *foldIntBinOp(Module &M, BinOpInst *B, ConstantInt *L, ConstantInt *R) {
  auto *Ty = cast<IntegerType>(B->getType());
  int64_t X = L->getValue(), Y = R->getValue(), V;
  switch (B->getOp()) {
  case BinOpInst::Op::Add:
    V = X + Y;
    break;
  case BinOpInst::Op::Sub:
    V = X - Y;
    break;
  case BinOpInst::Op::Mul:
    V = X * Y;
    break;
  case BinOpInst::Op::SDiv:
    if (Y == 0)
      return nullptr;
    V = X / Y;
    break;
  case BinOpInst::Op::SRem:
    if (Y == 0)
      return nullptr;
    V = X % Y;
    break;
  case BinOpInst::Op::And:
    V = X & Y;
    break;
  case BinOpInst::Op::Or:
    V = X | Y;
    break;
  case BinOpInst::Op::Xor:
    V = X ^ Y;
    break;
  case BinOpInst::Op::Shl:
    V = static_cast<int64_t>(static_cast<uint64_t>(X)
                             << (static_cast<uint64_t>(Y) & 63));
    break;
  case BinOpInst::Op::AShr:
    V = X >> (static_cast<uint64_t>(Y) & 63);
    break;
  default:
    return nullptr;
  }
  return M.getConstantInt(Ty, V);
}

Value *foldFPBinOp(Module &M, BinOpInst *B, ConstantFP *L, ConstantFP *R) {
  double X = L->getValue(), Y = R->getValue(), V;
  switch (B->getOp()) {
  case BinOpInst::Op::FAdd:
    V = X + Y;
    break;
  case BinOpInst::Op::FSub:
    V = X - Y;
    break;
  case BinOpInst::Op::FMul:
    V = X * Y;
    break;
  case BinOpInst::Op::FDiv:
    V = X / Y;
    break;
  default:
    return nullptr;
  }
  if (B->getType()->isFloatTy())
    V = static_cast<double>(static_cast<float>(V));
  return M.getConstantFP(B->getType(), V);
}

Value *foldCmp(Module &M, CmpInst *C) {
  const auto *LI = dyn_cast<ConstantInt>(C->getLHS());
  const auto *RI = dyn_cast<ConstantInt>(C->getRHS());
  const auto *LF = dyn_cast<ConstantFP>(C->getLHS());
  const auto *RF = dyn_cast<ConstantFP>(C->getRHS());
  bool V;
  if (LI && RI) {
    int64_t X = LI->getValue(), Y = RI->getValue();
    switch (C->getPredicate()) {
    case CmpInst::Predicate::EQ:
      V = X == Y;
      break;
    case CmpInst::Predicate::NE:
      V = X != Y;
      break;
    case CmpInst::Predicate::SLT:
      V = X < Y;
      break;
    case CmpInst::Predicate::SLE:
      V = X <= Y;
      break;
    case CmpInst::Predicate::SGT:
      V = X > Y;
      break;
    case CmpInst::Predicate::SGE:
      V = X >= Y;
      break;
    default:
      return nullptr;
    }
  } else if (LF && RF) {
    double X = LF->getValue(), Y = RF->getValue();
    switch (C->getPredicate()) {
    case CmpInst::Predicate::FOEQ:
      V = X == Y;
      break;
    case CmpInst::Predicate::FONE:
      V = X != Y;
      break;
    case CmpInst::Predicate::FOLT:
      V = X < Y;
      break;
    case CmpInst::Predicate::FOLE:
      V = X <= Y;
      break;
    case CmpInst::Predicate::FOGT:
      V = X > Y;
      break;
    case CmpInst::Predicate::FOGE:
      V = X >= Y;
      break;
    default:
      return nullptr;
    }
  } else {
    return nullptr;
  }
  return M.getInt1(V);
}

Value *foldCast(Module &M, CastInst *C) {
  const auto *CI = dyn_cast<ConstantInt>(C->getValueOperand());
  const auto *CF = dyn_cast<ConstantFP>(C->getValueOperand());
  switch (C->getOp()) {
  case CastInst::Op::Trunc:
  case CastInst::Op::SExt:
    if (CI)
      return M.getConstantInt(cast<IntegerType>(C->getType()),
                              CI->getValue());
    return nullptr;
  case CastInst::Op::ZExt:
    if (CI)
      return M.getConstantInt(cast<IntegerType>(C->getType()),
                              static_cast<int64_t>(CI->getZExtValue()));
    return nullptr;
  case CastInst::Op::SIToFP:
    if (CI)
      return M.getConstantFP(C->getType(),
                             static_cast<double>(CI->getValue()));
    return nullptr;
  case CastInst::Op::FPToSI:
    if (CF)
      return M.getConstantInt(cast<IntegerType>(C->getType()),
                              static_cast<int64_t>(CF->getValue()));
    return nullptr;
  case CastInst::Op::FPExt:
    if (CF)
      return M.getConstantFP(C->getType(), CF->getValue());
    return nullptr;
  case CastInst::Op::FPTrunc:
    if (CF)
      return M.getConstantFP(
          C->getType(),
          static_cast<double>(static_cast<float>(CF->getValue())));
    return nullptr;
  default:
    return nullptr; // Pointer casts are not value computations.
  }
}

/// Algebraic identities that do not need both operands constant.
Value *foldIdentity(Module &M, BinOpInst *B) {
  auto *RC = dyn_cast<ConstantInt>(B->getRHS());
  switch (B->getOp()) {
  case BinOpInst::Op::Add:
  case BinOpInst::Op::Sub:
    if (RC && RC->isZero())
      return B->getLHS();
    return nullptr;
  case BinOpInst::Op::Mul:
    if (RC && RC->isOne())
      return B->getLHS();
    if (RC && RC->isZero())
      return RC;
    return nullptr;
  default:
    return nullptr;
  }
  (void)M;
}

/// True if removing \p I (when unused) is safe.
bool isSideEffectFree(const Instruction *I) {
  switch (I->getKind()) {
  case Value::ValueKind::BinOp:
  case Value::ValueKind::Cmp:
  case Value::ValueKind::Cast:
  case Value::ValueKind::GEP:
  case Value::ValueKind::Select:
  case Value::ValueKind::Phi:
    return true;
  default:
    return false; // Loads kept (checked-memory mode observes them).
  }
}

class Simplifier {
public:
  Simplifier(Function &F, SimplifyStats &Stats) : F(F), Stats(Stats) {}

  bool runOnce() {
    bool Changed = false;
    Changed |= foldConstants();
    Changed |= simplifyBranches();
    if (unsigned N = removeUnreachableBlocks(F)) {
      Stats.BlocksRemoved += N;
      Changed = true;
    }
    Changed |= removeDeadInstructions();
    return Changed;
  }

private:
  bool foldConstants() {
    Module &M = *F.getParent();
    bool Changed = false;
    for (Instruction *I : F.instructions()) {
      Value *Folded = nullptr;
      if (auto *B = dyn_cast<BinOpInst>(I)) {
        auto *LI = dyn_cast<ConstantInt>(B->getLHS());
        auto *RI = dyn_cast<ConstantInt>(B->getRHS());
        auto *LF = dyn_cast<ConstantFP>(B->getLHS());
        auto *RF = dyn_cast<ConstantFP>(B->getRHS());
        if (LI && RI)
          Folded = foldIntBinOp(M, B, LI, RI);
        else if (LF && RF)
          Folded = foldFPBinOp(M, B, LF, RF);
        else
          Folded = foldIdentity(M, B);
      } else if (auto *C = dyn_cast<CmpInst>(I)) {
        Folded = foldCmp(M, C);
      } else if (auto *C = dyn_cast<CastInst>(I)) {
        Folded = foldCast(M, C);
      } else if (auto *S = dyn_cast<SelectInst>(I)) {
        if (auto *Cond = dyn_cast<ConstantInt>(S->getCondition()))
          Folded = Cond->isZero() ? S->getFalseValue() : S->getTrueValue();
        else if (S->getTrueValue() == S->getFalseValue())
          Folded = S->getTrueValue();
      } else if (auto *P = dyn_cast<PhiInst>(I)) {
        // A phi whose incomings are all the same value (or itself).
        Value *Only = nullptr;
        bool Uniform = true;
        for (unsigned K = 0, E = P->getNumIncoming(); K != E; ++K) {
          Value *In = P->getIncomingValue(K);
          if (In == P)
            continue;
          if (Only && In != Only) {
            Uniform = false;
            break;
          }
          Only = In;
        }
        if (Uniform && Only)
          Folded = Only;
      }
      if (Folded && Folded != I) {
        I->replaceAllUsesWith(Folded);
        ++Stats.ConstantsFolded;
        Changed = true;
      }
    }
    return Changed;
  }

  bool simplifyBranches() {
    bool Changed = false;
    for (const auto &BB : F) {
      auto *Br = dyn_cast_or_null<BranchInst>(BB->getTerminator());
      if (!Br || !Br->isConditional())
        continue;
      auto *C = dyn_cast<ConstantInt>(Br->getCondition());
      if (!C)
        continue;
      BasicBlock *Taken = Br->getSuccessor(C->isZero() ? 1 : 0);
      BasicBlock *Dead = Br->getSuccessor(C->isZero() ? 0 : 1);
      // Remove the dead edge from phis in the not-taken successor.
      if (Dead != Taken) {
        for (const auto &I : *Dead) {
          auto *P = dyn_cast<PhiInst>(I.get());
          if (!P)
            break;
          for (unsigned K = 0; K != P->getNumIncoming(); ++K)
            if (P->getIncomingBlock(K) == BB.get()) {
              std::vector<std::pair<Value *, BasicBlock *>> Keep;
              for (unsigned J = 0; J != P->getNumIncoming(); ++J)
                if (J != K)
                  Keep.push_back(
                      {P->getIncomingValue(J), P->getIncomingBlock(J)});
              P->clearIncoming();
              for (auto &[V, B2] : Keep)
                P->addIncoming(V, B2);
              break;
            }
        }
      }
      IRBuilderLiteReplace(BB.get(), Br, Taken);
      ++Stats.BranchesSimplified;
      Changed = true;
    }
    return Changed;
  }

  /// Replaces a conditional branch with an unconditional one.
  void IRBuilderLiteReplace(BasicBlock *BB, BranchInst *Old,
                            BasicBlock *Dest) {
    Old->dropAllOperands();
    BB->remove(Old);
    auto New = std::make_unique<BranchInst>(
        Dest, F.getParent()->getContext().getVoidTy());
    BB->push_back(std::move(New));
  }

  bool removeDeadInstructions() {
    bool Changed = true, Any = false;
    while (Changed) {
      Changed = false;
      for (Instruction *I : F.instructions()) {
        if (I->getType()->isVoidTy() || I->hasUses() ||
            !isSideEffectFree(I))
          continue;
        I->dropAllOperands();
        I->eraseFromParent();
        ++Stats.DeadInstructionsRemoved;
        Changed = true;
        Any = true;
      }
    }
    return Any;
  }

  Function &F;
  SimplifyStats &Stats;
};

} // namespace

SimplifyStats cgcm::simplifyFunction(Function &F) {
  SimplifyStats Stats;
  if (F.isDeclaration())
    return Stats;
  Simplifier S(F, Stats);
  unsigned Guard = 0;
  while (S.runOnce() && ++Guard < 64)
    ;
  std::string Err;
  if (!verifyFunction(F, &Err))
    reportFatalError("simplify produced invalid IR: " + Err);
  return Stats;
}

SimplifyStats cgcm::simplifyModule(Module &M) {
  SimplifyStats Total;
  for (const auto &F : M.functions()) {
    SimplifyStats S = simplifyFunction(*F);
    Total.ConstantsFolded += S.ConstantsFolded;
    Total.BranchesSimplified += S.BranchesSimplified;
    Total.DeadInstructionsRemoved += S.DeadInstructionsRemoved;
    Total.BlocksRemoved += S.BlocksRemoved;
  }
  return Total;
}
