//===- transform/Simplify.h - Constant folding and dead-code removal ----------===//
//
// Part of the CGCM reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A classic cleanup pass: folds constant expressions, simplifies
/// branches on constant conditions, removes unreachable blocks, and
/// deletes dead side-effect-free instructions. Run after the CGCM
/// pipeline it tidies the grid computations and adapter casts the
/// transformations leave behind; it is also exercised independently as a
/// generic optimization.
///
//===----------------------------------------------------------------------===//

#ifndef CGCM_TRANSFORM_SIMPLIFY_H
#define CGCM_TRANSFORM_SIMPLIFY_H

#include "ir/Module.h"

namespace cgcm {

struct SimplifyStats {
  unsigned ConstantsFolded = 0;
  unsigned BranchesSimplified = 0;
  unsigned DeadInstructionsRemoved = 0;
  unsigned BlocksRemoved = 0;
};

/// Simplifies \p F to a fixpoint.
SimplifyStats simplifyFunction(Function &F);

/// Simplifies every defined function.
SimplifyStats simplifyModule(Module &M);

} // namespace cgcm

#endif // CGCM_TRANSFORM_SIMPLIFY_H
