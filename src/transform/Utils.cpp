//===- transform/Utils.cpp - Shared transformation utilities ---------------===//
//
// Part of the CGCM reproduction project.
//
//===----------------------------------------------------------------------===//

#include "transform/Utils.h"

#include "analysis/MemoryObjects.h"

#include <set>
#include <vector>

using namespace cgcm;

namespace {

/// Restrict-style aliasing for promotion profitability (see DESIGN.md):
/// distinct identified objects do not alias; distinct pointer arguments
/// do not alias each other or identified objects; loads and other
/// unknown roots alias everything.
bool promoMayAlias(const MemoryObject &A, const MemoryObject &B) {
  auto Strength = [](const MemoryObject &O) {
    if (O.isIdentified())
      return 2;
    if (isa<Argument>(O.Root))
      return 1;
    return 0;
  };
  int SA = Strength(A), SB = Strength(B);
  if (SA == 0 || SB == 0)
    return true;
  return A.Root == B.Root;
}

bool mayModRefImpl(const MemoryObject &Obj,
                   const std::vector<Instruction *> &Insts,
                   std::set<const Function *> &VisitedFns);

bool callMayModRef(const MemoryObject &Obj, const CallInst *CI,
                   std::set<const Function *> &VisitedFns) {
  const Function *Callee = CI->getCallee();
  const std::string &N = Callee->getName();
  if (isRuntimeFunction(Callee))
    return false;
  if (N == "sqrt" || N == "exp" || N == "log" || N == "sin" || N == "cos" ||
      N == "fabs" || N == "pow" || N == "print_i64" || N == "print_f64" ||
      N == "__tid" || N == "__ntid" || N == "malloc" || N == "calloc")
    return false;
  if (N == "free" || N == "realloc" || N == "print_str")
    return promoMayAlias(Obj, findMemoryObject(CI->getArg(0)));
  if (Callee->isDeclaration())
    return true; // Unknown external.
  if (!VisitedFns.insert(Callee).second)
    return false; // Already being scanned higher in the recursion.
  std::vector<Instruction *> Body =
      const_cast<Function *>(Callee)->instructions();
  return mayModRefImpl(Obj, Body, VisitedFns);
}

bool mayModRefImpl(const MemoryObject &Obj,
                   const std::vector<Instruction *> &Insts,
                   std::set<const Function *> &VisitedFns) {
  for (Instruction *I : Insts) {
    if (const auto *LI = dyn_cast<LoadInst>(I)) {
      if (promoMayAlias(Obj, findMemoryObject(LI->getPointerOperand())))
        return true;
      continue;
    }
    if (const auto *SI = dyn_cast<StoreInst>(I)) {
      if (promoMayAlias(Obj, findMemoryObject(SI->getPointerOperand())))
        return true;
      continue;
    }
    if (const auto *CI = dyn_cast<CallInst>(I)) {
      if (callMayModRef(Obj, CI, VisitedFns))
        return true;
      continue;
    }
    // Kernel launches: GPU-side accesses are managed; not CPU mod/ref.
  }
  return false;
}

} // namespace

bool cgcm::regionMayModRef(const Value *P,
                           const std::vector<Instruction *> &Insts) {
  MemoryObject Obj = findMemoryObject(P);
  std::set<const Function *> VisitedFns;
  return mayModRefImpl(Obj, Insts, VisitedFns);
}

unsigned cgcm::removeUnreachableBlocks(Function &F) {
  if (F.isDeclaration())
    return 0;
  std::set<BasicBlock *> Reachable;
  std::vector<BasicBlock *> Work{F.getEntryBlock()};
  Reachable.insert(F.getEntryBlock());
  while (!Work.empty()) {
    BasicBlock *BB = Work.back();
    Work.pop_back();
    for (BasicBlock *S : BB->successors())
      if (Reachable.insert(S).second)
        Work.push_back(S);
  }
  std::vector<BasicBlock *> Dead;
  for (const auto &BB : F)
    if (!Reachable.count(BB.get()))
      Dead.push_back(BB.get());
  // Drop operand edges first: dead code may reference live values, and
  // dead phis may reference each other.
  for (BasicBlock *BB : Dead) {
    for (const auto &I : *BB)
      I->dropAllOperands();
  }
  // Phis in live blocks may list dead predecessors.
  for (const auto &BB : F) {
    if (!Reachable.count(BB.get()))
      continue;
    for (const auto &I : *BB) {
      auto *P = dyn_cast<PhiInst>(I.get());
      if (!P)
        break;
      for (unsigned K = P->getNumIncoming(); K-- > 0;)
        if (!Reachable.count(P->getIncomingBlock(K))) {
          // Rebuild without the dead edge (rare; simple linear rebuild).
          std::vector<std::pair<Value *, BasicBlock *>> Keep;
          for (unsigned J = 0; J != P->getNumIncoming(); ++J)
            if (Reachable.count(P->getIncomingBlock(J)))
              Keep.push_back({P->getIncomingValue(J), P->getIncomingBlock(J)});
          P->clearIncoming();
          for (auto &[V, B] : Keep)
            P->addIncoming(V, B);
          break;
        }
    }
  }
  for (BasicBlock *BB : Dead)
    F.eraseBlock(BB);
  return Dead.size();
}

RuntimeAPI cgcm::getOrDeclareRuntimeAPI(Module &M) {
  TypeContext &Ctx = M.getContext();
  Type *I8Ptr = Ctx.getPointerTo(Ctx.getInt8Ty());
  Type *I64 = Ctx.getInt64Ty();
  Type *I32 = Ctx.getInt32Ty();
  Type *VoidTy = Ctx.getVoidTy();
  auto Declare = [&](const char *Name, Type *Ret, std::vector<Type *> Params) {
    return M.getOrCreateFunction(Name, Ctx.getFunctionTy(Ret, std::move(Params)));
  };
  RuntimeAPI API;
  API.Map = Declare("cgcm_map", I8Ptr, {I8Ptr});
  API.Unmap = Declare("cgcm_unmap", VoidTy, {I8Ptr});
  API.Release = Declare("cgcm_release", VoidTy, {I8Ptr});
  API.MapArray = Declare("cgcm_map_array", I8Ptr, {I8Ptr});
  API.UnmapArray = Declare("cgcm_unmap_array", VoidTy, {I8Ptr});
  API.ReleaseArray = Declare("cgcm_release_array", VoidTy, {I8Ptr});
  API.DeclareGlobal =
      Declare("cgcm_declare_global", VoidTy, {I8Ptr, I8Ptr, I64, I32});
  API.DeclareAlloca = Declare("cgcm_declare_alloca", VoidTy, {I8Ptr, I64});
  return API;
}

bool cgcm::isRuntimeFunction(const Function *F) {
  const std::string &N = F->getName();
  return N == "cgcm_map" || N == "cgcm_unmap" || N == "cgcm_release" ||
         N == "cgcm_map_array" || N == "cgcm_unmap_array" ||
         N == "cgcm_release_array" || N == "cgcm_declare_global" ||
         N == "cgcm_declare_alloca";
}

Value *cgcm::getRuntimeCallPointer(const Instruction *I) {
  const auto *CI = dyn_cast<CallInst>(I);
  if (!CI)
    return nullptr;
  const std::string &N = CI->getCallee()->getName();
  if (N != "cgcm_map" && N != "cgcm_unmap" && N != "cgcm_release" &&
      N != "cgcm_map_array" && N != "cgcm_unmap_array" &&
      N != "cgcm_release_array")
    return nullptr;
  Value *Arg = CI->getArg(0);
  // Look through the i8* adapter cast the management pass inserts.
  if (auto *Cast = dyn_cast<CastInst>(Arg))
    if (Cast->getOp() == CastInst::Op::Bitcast)
      return Cast->getValueOperand();
  return Arg;
}
