//===- transform/Utils.h - Shared transformation utilities -----------------===//
//
// Part of the CGCM reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Small IR utilities shared by the passes: unreachable-block removal and
/// helpers for declaring/bitcasting around the CGCM runtime interface.
///
//===----------------------------------------------------------------------===//

#ifndef CGCM_TRANSFORM_UTILS_H
#define CGCM_TRANSFORM_UTILS_H

#include "ir/Module.h"

namespace cgcm {

/// Deletes blocks not reachable from the entry (the frontend emits them
/// after return/break/continue). Returns the number removed.
unsigned removeUnreachableBlocks(Function &F);

/// Declares (or fetches) the CGCM runtime interface functions in \p M:
/// cgcm_map, cgcm_unmap, cgcm_release, their *_array variants,
/// cgcm_declare_global, and cgcm_declare_alloca.
struct RuntimeAPI {
  Function *Map;
  Function *Unmap;
  Function *Release;
  Function *MapArray;
  Function *UnmapArray;
  Function *ReleaseArray;
  Function *DeclareGlobal;
  Function *DeclareAlloca;
};
RuntimeAPI getOrDeclareRuntimeAPI(Module &M);

/// True if \p F is one of the CGCM runtime interface functions.
bool isRuntimeFunction(const Function *F);

/// For a call to cgcm_map/unmap/release (any variant), the pointer the
/// call tracks, looking through the bitcast the inserter added; null for
/// other instructions.
Value *getRuntimeCallPointer(const Instruction *I);

/// True if CPU code in \p Insts may modify or reference the allocation
/// unit \p P points to. Kernel launches and CGCM runtime calls do not
/// count (GPU-side accesses are what promotion enables); calls into
/// defined CPU functions are scanned transitively. Uses the project's
/// restrict-style aliasing (distinct identified objects and distinct
/// pointer arguments do not alias; see DESIGN.md).
bool regionMayModRef(const Value *P, const std::vector<Instruction *> &Insts);

} // namespace cgcm

#endif // CGCM_TRANSFORM_UTILS_H
