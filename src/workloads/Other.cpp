//===- workloads/Other.cpp - StreamIt fm and PARSEC blackscholes -------------===//
//
// Part of the CGCM reproduction project.
//
//===----------------------------------------------------------------------===//

#include "workloads/Workloads.h"

using namespace cgcm;

std::vector<Workload> cgcm::workload_sources::others() {
  std::vector<Workload> W;

  // fm (StreamIt): FM radio pipeline. The FIR filter stages parallelize;
  // the demodulator is a sequential phase recurrence that dominates run
  // time, so the program is CPU-bound ("Other", like the paper where both
  // GPU and communication round to 0%). K1 signal synthesis; K2 low-pass
  // FIR; K3 band-pass FIR; K4 equalizer.
  W.push_back({"fm", "StreamIt", R"(
    double samples[512];
    double lp[512];
    double bp[512];
    double eq[512];
    double demod[512];
    int main() {
      int i; int t;
      for (i = 0; i < 512; i++)
        samples[i] = sin(i * 0.11) * 0.7 + sin(i * 0.013) * 0.3;
      for (i = 0; i < 504; i++) {
        double s = 0.0;
        for (t = 0; t < 8; t++)
          s += samples[i + t] * (0.125 - (t - 3.5) * 0.002);
        lp[i] = s;
      }
      for (i = 0; i < 504; i++) {
        double s = 0.0;
        for (t = 0; t < 8; t++)
          s += samples[i + t] * ((t % 2) * 0.25 - 0.0625);
        bp[i] = s;
      }
      for (i = 0; i < 504; i++)
        eq[i] = lp[i] * 0.6 + bp[i] * 0.4;
      int r;
      double phase = 0.0;
      double out = 0.0;
      for (r = 0; r < 18; r++) {
        for (i = 0; i < 504; i++) {
          phase = phase * 0.95 + eq[i] * 0.05;
          out += sin(phase) * cos(phase * 0.5) * 0.001;
        }
      }
      print_f64(out);
      return 0;
    }
  )",
               "Other", 4, 4, 0.00, 0.00, 0.00, 0.00});

  // blackscholes (PARSEC): option pricing. The pricing kernel receives a
  // pointer laundered through integer casts (the original's packed
  // struct-of-arrays access), so no named-region technique applies (0 of
  // 1). The CPU reference valuation dominates ("Other"); without
  // promotion the repeated launches re-transfer every array each round.
  W.push_back({"blackscholes", "PARSEC", R"(
    double spot[256];
    double strike[256];
    double tte[256];
    double vol[256];
    double price[256];
    double refp[256];
    int main() {
      int i; int t;
      double v = 0.71;
      for (i = 0; i < 256; i++) {
        v = v * 0.83 + 0.19;
        if (v > 1.0)
          v = v - 1.0;
        spot[i] = 80.0 + v * 40.0;
        strike[i] = 90.0 + v * 25.0;
        tte[i] = 0.25 + v * 0.5;
        vol[i] = 0.15 + v * 0.3;
      }
      double check = 0.0;
      for (i = 0; i < 256; i++) {
        double u = 1.06;
        double dn = 0.94;
        double p = spot[i];
        int s;
        for (s = 0; s < 48; s++) {
          p = p * (((s + i) % 2) * (u - dn) + dn);
          if (p > strike[i] * 2.0)
            p = strike[i] * 2.0;
          check += p * 0.00001;
        }
        refp[i] = p;
      }
      double *sp = (double*)((long)spot);
      for (t = 0; t < 12; t++) {
        for (i = 0; i < 256; i++) {
          double s0 = sp[i];
          double k = strike[i];
          double sig = vol[i];
          double tt = tte[i];
          double d1 = (log(s0 / k) + (0.03 + 0.5 * sig * sig) * tt) /
                      (sig * sqrt(tt));
          double d2 = d1 - sig * sqrt(tt);
          double n1 = 1.0 / (1.0 + exp(0.0 - 1.702 * d1));
          double n2 = 1.0 / (1.0 + exp(0.0 - 1.702 * d2));
          price[i] = s0 * n1 - k * exp(0.0 - 0.03 * tt) * n2;
        }
      }
      double sum = check;
      for (i = 0; i < 256; i++)
        sum += price[i] + refp[i] * 0.001;
      print_f64(sum);
      return 0;
    }
  )",
               "Other", 1, 0, 1.74, 3.23, 45.84, 0.96});

  return W;
}
