//===- workloads/PolyBenchB.cpp - PolyBench workloads (gemver .. 3mm) -------===//
//
// Part of the CGCM reproduction project.
//
//===----------------------------------------------------------------------===//

#include "workloads/Workloads.h"

using namespace cgcm;

std::vector<Workload> cgcm::workload_sources::polybenchB() {
  std::vector<Workload> W;

  // gemver: vector multiply and matrix addition. K1 init everything;
  // K2 A += u1 v1^T + u2 v2^T; K3 x = beta A^T y; K4 x += z; K5 w = alpha A x.
  W.push_back({"gemver", "PolyBench", R"(
    double A[64][64];
    double u1[64];
    double v1[64];
    double u2[64];
    double v2[64];
    double x[64];
    double y[64];
    double z[64];
    double w[64];
    int main() {
      int i; int j;
      for (i = 0; i < 64; i++) {
        u1[i] = (i % 9) * 0.1;
        v1[i] = ((i + 3) % 7) * 0.1;
        u2[i] = ((i + 1) % 5) * 0.1;
        v2[i] = ((i + 2) % 11) * 0.05;
        y[i] = (i % 13) * 0.04;
        z[i] = (i % 3) * 0.2;
        for (j = 0; j < 64; j++)
          A[i][j] = ((i * j + i + j) % 19) * 0.02;
      }
      for (i = 0; i < 64; i++) {
        for (j = 0; j < 64; j++)
          A[i][j] = A[i][j] + u1[i] * v1[j] + u2[i] * v2[j];
      }
      for (i = 0; i < 64; i++) {
        double s = 0.0;
        for (j = 0; j < 64; j++)
          s += A[j][i] * y[j];
        x[i] = 0.9 * s;
      }
      for (i = 0; i < 64; i++)
        x[i] = x[i] + z[i];
      for (i = 0; i < 64; i++) {
        double s = 0.0;
        for (j = 0; j < 64; j++)
          s += A[i][j] * x[j];
        w[i] = 1.1 * s;
      }
      double sum = 0.0;
      for (i = 0; i < 64; i++)
        sum += w[i];
      print_f64(sum);
      return 0;
    }
  )",
               "Comm.", 5, 5, 4.06, 4.10, 88.21, 89.36});

  // gesummv: y = alpha A x + beta B x. Initialization is a CPU
  // recurrence; K1 tmp = A x; K2 y = alpha*tmp + beta*(B x).
  W.push_back({"gesummv", "PolyBench", R"(
    double A[72][72];
    double B[72][72];
    double x[72];
    double y[72];
    int main() {
      int i; int j;
      for (i = 0; i < 72; i++) {
        x[i] = 0.05 + (i % 11) * 0.01;
        for (j = 0; j < 72; j++) {
          A[i][j] = ((i * 5 + j * 3) % 23) * 0.03;
          B[i][j] = ((i + j * 7) % 19) * 0.04;
        }
      }
      for (i = 0; i < 72; i++) {
        double sa = 0.0;
        double sb = 0.0;
        for (j = 0; j < 72; j++) {
          sa += A[i][j] * x[j];
          sb += B[i][j] * x[j];
        }
        y[i] = 1.3 * sa + 0.7 * sb;
      }
      double sum = 0.0;
      for (i = 0; i < 72; i++)
        sum += y[i];
      print_f64(sum);
      return 0;
    }
  )",
               "Comm.", 2, 2, 6.17, 6.29, 86.17, 86.74});

  // gramschmidt: QR factorization. The per-column norms and projections
  // are CPU reductions between the kernels, which keeps CGCM's
  // communication cyclic; this is the one program the paper's idealized
  // inspector-executor wins. K1 init A; K2 column scale; K3 column update.
  W.push_back({"gramschmidt", "PolyBench", R"(
    double A[20][20];
    double Q[20][20];
    double R[20][20];
    int main() {
      int i; int j; int k;
      double total = 0.0;
      for (i = 0; i < 20; i++) {
        for (j = 0; j < 20; j++)
          A[i][j] = ((i * 13 + j * 5) % 31) * 0.03 + 0.5;
      }
      for (k = 0; k < 20; k++) {
        double nrm = 0.0;
        for (i = 0; i < 20; i++)
          nrm += A[i][k] * A[i][k];
        double rkk = sqrt(nrm);
        R[k][k] = rkk;
        double inv = 1.0 / rkk;
        for (i = 0; i < 20; i++)
          Q[i][k] = A[i][k] * inv;
        for (j = k + 1; j < 20; j++) {
          double proj = 0.0;
          for (i = 0; i < 20; i++)
            proj += Q[i][k] * A[i][j];
          R[k][j] = proj;
          total += proj * 0.001;
          for (i = 0; i < 20; i++)
            A[i][j] = A[i][j] - Q[i][k] * proj;
        }
      }
      double sum = total;
      for (i = 0; i < 20; i++)
        for (j = 0; j < 20; j++)
          sum += R[i][j] + Q[i][j];
      print_f64(sum);
      return 0;
    }
  )",
               "Comm.", 3, 3, 1.82, 8.37, 98.18, 90.91});

  // jacobi-2d-imper: two-array five-point stencil over timesteps.
  // K1 init; per step: K2 stencil A->B; K3 copy B->A. With promotion the
  // arrays stay resident across the whole time loop (GPU-bound).
  W.push_back({"jacobi-2d-imper", "PolyBench", R"(
    double A[26][26];
    double B[26][26];
    int main() {
      int i; int j; int t;
      for (i = 0; i < 26; i++) {
        for (j = 0; j < 26; j++) {
          A[i][j] = ((i * 26 + j) % 37) * 0.027 + 0.1;
          B[i][j] = 0.0;
        }
      }
      for (t = 0; t < 20; t++) {
        for (i = 1; i < 25; i++) {
          for (j = 1; j < 25; j++)
            B[i][j] = 0.2 * (A[i][j] + A[i][j - 1] + A[i][j + 1] +
                             A[i - 1][j] + A[i + 1][j]);
        }
        for (i = 1; i < 25; i++) {
          for (j = 1; j < 25; j++)
            A[i][j] = B[i][j];
        }
      }
      double sum = 0.0;
      for (i = 0; i < 26; i++)
        for (j = 0; j < 26; j++)
          sum += A[i][j];
      print_f64(sum);
      return 0;
    }
  )",
               "GPU", 3, 3, 7.20, 95.97, 92.82, 3.32});

  // seidel: in-place Gauss-Seidel sweep; the sweep itself is sequential
  // (loop-carried in both dimensions), so only the initialization becomes
  // a kernel and the program stays CPU-bound ("Other").
  W.push_back({"seidel", "PolyBench", R"(
    double A[30][30];
    int main() {
      int i; int j; int t;
      for (i = 0; i < 30; i++) {
        for (j = 0; j < 30; j++)
          A[i][j] = ((i * 3 + j * 7) % 41) * 0.02 + 0.25;
      }
      for (t = 0; t < 6; t++) {
        for (i = 1; i < 29; i++) {
          for (j = 1; j < 29; j++)
            A[i][j] = (A[i - 1][j] + A[i + 1][j] + A[i][j - 1] +
                       A[i][j + 1] + A[i][j]) * 0.2;
        }
      }
      double sum = 0.0;
      for (i = 0; i < 30; i++)
        for (j = 0; j < 30; j++)
          sum += A[i][j];
      print_f64(sum);
      return 0;
    }
  )",
               "Other", 1, 1, 0.01, 0.01, 0.59, 0.59});

  // lu: in-place LU factorization. The pivot reciprocal is a small CPU
  // region between kernels: the glue-kernel pass lowers it to the GPU so
  // map promotion can hoist A out of the k loop. The row-scale kernel
  // takes an interior pointer into A (the current row), which named-region
  // and inspector-executor techniques cannot express: 2 of 3 applicable.
  // K1 init; K2 row scale + pivot row copy; K3 trailing update.
  W.push_back({"lu", "PolyBench", R"(
    double A[48][48];
    double prow[48];
    double pivbuf[2];
    void scale_row(double *abase, int k) {
      int j;
      for (j = k + 1; j < 48; j++) {
        abase[k * 48 + j - 1] = abase[k * 48 + j - 1] * pivbuf[0];
        prow[j] = abase[k * 48 + j - 1];
      }
    }
    int main() {
      int i; int j; int k;
      for (i = 0; i < 48; i++) {
        for (j = 0; j < 48; j++) {
          if (i == j)
            A[i][j] = 48.0 + ((i * 3) % 5);
          else
            A[i][j] = ((i + j * 7) % 13) * 0.05;
        }
      }
      double *abase = (double*)A + 1;
      for (k = 0; k < 47; k++) {
        pivbuf[0] = 1.0 / A[k][k];
        scale_row(abase, k);
        for (i = k + 1; i < 48; i++) {
          for (j = k + 1; j < 48; j++)
            A[i][j] = A[i][j] - A[i][k] * prow[j];
        }
      }
      double sum = 0.0;
      for (i = 0; i < 48; i++)
        sum += A[i][i] + A[i][(i * 11 + 3) % 48];
      print_f64(sum);
      return 0;
    }
  )",
               "GPU", 3, 2, 0.41, 88.05, 99.59, 7.02});

  // ludcmp: LU factorization plus triangular solves. Two kernels take
  // non-named pointers (an interior row pointer and a pointer laundered
  // through integer casts): 3 of 5 named-region applicable.
  // K1 init; K2 row scale; K3 trailing update; K4 diagonal solve seed
  // (cast pointer); K5 result scale.
  W.push_back({"ludcmp", "PolyBench", R"(
    double A[48][48];
    double b[48];
    double d[48];
    double xr[48];
    double prow[48];
    double pivbuf[2];
    void scale_row(double *abase, int k) {
      int j;
      for (j = k + 1; j < 48; j++) {
        abase[k * 48 + j - 1] = abase[k * 48 + j - 1] * pivbuf[0];
        prow[j] = abase[k * 48 + j - 1];
      }
    }
    __kernel void seed_solve(double *dd, double *bb, int n) {
      long t = __tid();
      if (t < n)
        dd[t] = bb[t] * 0.5 + 0.25;
    }
    int main() {
      int i; int j; int k;
      for (i = 0; i < 48; i++) {
        b[i] = (i % 7) * 0.3 + 0.5;
        for (j = 0; j < 48; j++) {
          if (i == j)
            A[i][j] = 48.0 + (i % 3);
          else
            A[i][j] = ((i * 5 + j) % 11) * 0.04;
        }
      }
      double *abase = (double*)A + 1;
      for (k = 0; k < 47; k++) {
        pivbuf[0] = 1.0 / A[k][k];
        scale_row(abase, k);
        for (i = k + 1; i < 48; i++) {
          for (j = k + 1; j < 48; j++)
            A[i][j] = A[i][j] - A[i][k] * prow[j];
        }
      }
      launch seed_solve<<<1, 48>>>((double*)((long)d), b, 48);
      for (i = 0; i < 48; i++)
        xr[i] = d[i] / A[i][i];
      double sum = 0.0;
      for (i = 0; i < 48; i++)
        sum += xr[i];
      print_f64(sum);
      return 0;
    }
  )",
               "GPU", 5, 3, 1.23, 87.38, 98.10, 4.13});

  // 2mm: D = A*B*C via a temporary. K1-K4 initialize; K5 tmp = A*B;
  // K6 D = tmp*C; K7 scale D.
  W.push_back({"2mm", "PolyBench", R"(
    double A[32][32];
    double B[32][32];
    double C[32][32];
    double D[32][32];
    double tmp[32][32];
    void kernels() {
      int i; int j; int k;
      for (i = 0; i < 32; i++)
        for (j = 0; j < 32; j++)
          A[i][j] = ((i * j) % 15) * 0.04 + 0.1;
      for (i = 0; i < 32; i++)
        for (j = 0; j < 32; j++)
          B[i][j] = ((i + j * 2) % 19) * 0.03 + 0.2;
      for (i = 0; i < 32; i++)
        for (j = 0; j < 32; j++)
          C[i][j] = ((i * 2 + j) % 13) * 0.05;
      for (i = 0; i < 32; i++)
        for (j = 0; j < 32; j++)
          D[i][j] = ((i + j) % 9) * 0.02;
      for (i = 0; i < 32; i++) {
        for (j = 0; j < 32; j++) {
          double s = 0.0;
          for (k = 0; k < 32; k++)
            s += A[i][k] * B[k][j];
          tmp[i][j] = s;
        }
      }
      for (i = 0; i < 32; i++) {
        for (j = 0; j < 32; j++) {
          double s = 0.0;
          for (k = 0; k < 32; k++)
            s += tmp[i][k] * C[k][j];
          D[i][j] = D[i][j] + s;
        }
      }
      for (i = 0; i < 32; i++)
        for (j = 0; j < 32; j++)
          D[i][j] = D[i][j] * 0.8;
    }
    int main() {
      int i; int j;
      kernels();
      double sum = 0.0;
      for (i = 0; i < 32; i++)
        for (j = 0; j < 32; j++)
          sum += D[i][j];
      print_f64(sum);
      return 0;
    }
  )",
               "GPU", 7, 7, 75.53, 77.25, 17.96, 18.25});

  // 3mm: G = (A*B)*(C*D). K1-K4 init inputs; K5-K7 zero E, F, G;
  // K8 E = A*B; K9 F = C*D; K10 G = E*F.
  W.push_back({"3mm", "PolyBench", R"(
    double A[28][28];
    double B[28][28];
    double C[28][28];
    double D[28][28];
    double E[28][28];
    double F[28][28];
    double G[28][28];
    void kernels() {
      int i; int j; int k;
      for (i = 0; i < 28; i++)
        for (j = 0; j < 28; j++)
          A[i][j] = ((i * j + 1) % 17) * 0.05;
      for (i = 0; i < 28; i++)
        for (j = 0; j < 28; j++)
          B[i][j] = ((i + j * 3) % 13) * 0.06;
      for (i = 0; i < 28; i++)
        for (j = 0; j < 28; j++)
          C[i][j] = ((i * 2 + j) % 11) * 0.07;
      for (i = 0; i < 28; i++)
        for (j = 0; j < 28; j++)
          D[i][j] = ((i + j * 5) % 7) * 0.08;
      for (i = 0; i < 28; i++)
        for (j = 0; j < 28; j++)
          E[i][j] = 0.0;
      for (i = 0; i < 28; i++)
        for (j = 0; j < 28; j++)
          F[i][j] = 0.0;
      for (i = 0; i < 28; i++)
        for (j = 0; j < 28; j++)
          G[i][j] = 0.0;
      for (i = 0; i < 28; i++) {
        for (j = 0; j < 28; j++) {
          double s = 0.0;
          for (k = 0; k < 28; k++)
            s += A[i][k] * B[k][j];
          E[i][j] = s;
        }
      }
      for (i = 0; i < 28; i++) {
        for (j = 0; j < 28; j++) {
          double s = 0.0;
          for (k = 0; k < 28; k++)
            s += C[i][k] * D[k][j];
          F[i][j] = s;
        }
      }
      for (i = 0; i < 28; i++) {
        for (j = 0; j < 28; j++) {
          double s = 0.0;
          for (k = 0; k < 28; k++)
            s += E[i][k] * F[k][j];
          G[i][j] = s;
        }
      }
    }
    int main() {
      int i; int j;
      kernels();
      double sum = 0.0;
      for (i = 0; i < 28; i++)
        for (j = 0; j < 28; j++)
          sum += G[i][j];
      print_f64(sum);
      return 0;
    }
  )",
               "GPU", 10, 10, 78.75, 79.29, 17.86, 17.85});

  return W;
}
