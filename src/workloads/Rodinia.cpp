//===- workloads/Rodinia.cpp - Rodinia-style workloads ----------------------===//
//
// Part of the CGCM reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// MiniC re-implementations of the six Rodinia programs the paper's
/// DOALL parallelizer handles. These are larger and messier than the
/// PolyBench codes: interior pointers into component-blocked arrays
/// (cfd, hotspot, lud, srad), rotating buffers (nw), and CPU phases
/// between kernels (kmeans, srad) — the features that separate CGCM's
/// applicability from the named-region and inspector-executor baselines.
///
//===----------------------------------------------------------------------===//

#include "workloads/Workloads.h"

using namespace cgcm;

std::vector<Workload> cgcm::workload_sources::rodinia() {
  std::vector<Workload> W;

  // cfd: unstructured-grid Euler solver skeleton. State lives in one
  // component-blocked array (density, momentum x/y, energy); the flux and
  // update kernels receive interior pointers to the component blocks,
  // which named-region techniques cannot express: 3 of 9 applicable.
  W.push_back({"cfd", "Rodinia", R"(
    double vars[2048];
    double old[2048];
    double flux[2048];
    double step[512];
    int main() {
      int i; int t;
      for (i = 0; i < 2048; i++)
        vars[i] = ((i * 7) % 23) * 0.04 + 0.4;
      double *vmom = (double*)vars + 512;
      double *vmy = (double*)vars + 1024;
      double *vene = (double*)vars + 1536;
      double *omom = (double*)old + 512;
      double *omy = (double*)old + 1024;
      double *oene = (double*)old + 1536;
      double *fl = (double*)flux + 1;
      for (t = 0; t < 8; t++) {
        for (i = 0; i < 2048; i++)
          old[i] = vars[i];
        for (i = 0; i < 512; i++)
          step[i] = 0.5 / (fabs(vars[i]) + 0.2);
        for (i = 1; i < 511; i++)
          flux[i] = (omom[i + 1] - omom[i - 1]) * step[i];
        for (i = 1; i < 511; i++)
          vmom[i] = omom[i] - 0.05 * (oene[i] - oene[i - 1]) * step[i];
        for (i = 1; i < 511; i++)
          vmy[i] = omy[i] - 0.05 * (omom[i + 1] - omom[i]) * step[i];
        for (i = 1; i < 511; i++)
          vene[i] = oene[i] - 0.02 * (omom[i] * omom[i] + omy[i] * omy[i]);
        for (i = 1; i < 511; i++)
          vars[i] = old[i] - fl[i - 1] * 0.1;
        for (i = 1; i < 511; i++)
          vene[i] = vene[i] * 0.999 + 0.001 * oene[i];
      }
      double sum = 0.0;
      for (i = 0; i < 2048; i++)
        sum += vars[i];
      print_f64(sum);
      return 0;
    }
  )",
               "GPU", 9, 3, 4.65, 77.96, 85.90, 0.16});

  // hotspot: thermal stencil. The stencil kernel reads the temperature
  // grid through an offset pointer (the Rodinia code's halo border), so
  // only the write-back kernel is named-region applicable: 1 of 2.
  W.push_back({"hotspot", "Rodinia", R"(
    double temp[32][32];
    double tnext[32][32];
    double power[32][32];
    int main() {
      int i; int j; int t;
      double v = 0.61;
      for (i = 0; i < 32; i++) {
        for (j = 0; j < 32; j++) {
          v = v * 0.89 + 0.13;
          if (v > 1.0)
            v = v - 1.0;
          temp[i][j] = 320.0 + v * 10.0;
          power[i][j] = v * 0.01;
          tnext[i][j] = 0.0;
        }
      }
      double *tin = (double*)temp + 33;
      for (t = 0; t < 32; t++) {
        for (i = 1; i < 31; i++) {
          for (j = 1; j < 31; j++)
            tnext[i][j] = tin[(i - 1) * 32 + (j - 1)] * 0.6 +
                          0.1 * (tin[(i - 2) * 32 + (j - 1)] +
                                 tin[i * 32 + (j - 1)] +
                                 tin[(i - 1) * 32 + (j - 2)] +
                                 tin[(i - 1) * 32 + j]);
        }
        for (i = 1; i < 31; i++) {
          for (j = 1; j < 31; j++)
            temp[i][j] = tnext[i][j] + power[i][j] * 0.5;
        }
      }
      double sum = 0.0;
      for (i = 0; i < 32; i++)
        sum += temp[i][i] + temp[i][(i * 7 + 5) % 32];
      print_f64(sum);
      return 0;
    }
  )",
               "GPU", 2, 1, 2.78, 71.57, 92.60, 0.89});

  // kmeans: the assignment step runs on the GPU; the centroid update is
  // an irregular CPU reduction that keeps the points resident data moving
  // every iteration. A heavy CPU refinement phase afterwards makes the
  // program CPU-bound, as in the paper ("Other").
  W.push_back({"kmeans", "Rodinia", R"(
    double points[96][4];
    double cent[4][4];
    double acc[4][4];
    int count[4];
    int membership[96];
    int main() {
      int i; int c; int d; int t;
      for (i = 0; i < 96; i++) {
        membership[i] = 0;
        for (d = 0; d < 4; d++)
          points[i][d] = ((i * 11 + d * 17) % 29) * 0.1;
      }
      double v = 0.45;
      for (c = 0; c < 4; c++) {
        for (d = 0; d < 4; d++) {
          v = v * 0.77 + 0.21;
          if (v > 2.8)
            v = v - 2.8;
          cent[c][d] = v;
        }
      }
      for (t = 0; t < 4; t++) {
        for (i = 0; i < 96; i++) {
          double bestd = 1000000.0;
          int best = 0;
          for (c = 0; c < 4; c++) {
            double dist = 0.0;
            for (d = 0; d < 4; d++)
              dist += (points[i][d] - cent[c][d]) *
                      (points[i][d] - cent[c][d]);
            if (dist < bestd) {
              bestd = dist;
              best = c;
            }
          }
          membership[i] = best;
        }
        double zz = 0.0;
        for (c = 0; c < 4; c++) {
          count[c] = (int)zz;
          for (d = 0; d < 4; d++) {
            acc[c][d] = zz;
            zz = zz * 0.5;
          }
        }
        for (i = 0; i < 96; i++) {
          int m = membership[i];
          count[m] = count[m] + 1;
          for (d = 0; d < 4; d++)
            acc[membership[i]][d] = acc[membership[i]][d] + points[i][d];
        }
        double cc = 1.0;
        for (c = 0; c < 4; c++) {
          for (d = 0; d < 4; d++) {
            if (count[c] > 0)
              cent[c][d] = acc[c][d] / count[c] * cc;
            cc = cc * 1.0;
          }
        }
      }
      double refine = 0.0;
      double ph = 0.1;
      for (i = 0; i < 96; i++) {
        int r;
        for (r = 0; r < 40; r++) {
          ph = ph * 0.97 + points[i][ (r % 4) ] * 0.01;
          refine += sin(ph) * 0.001;
        }
      }
      double sum = refine;
      for (c = 0; c < 4; c++)
        for (d = 0; d < 4; d++)
          sum += cent[c][d];
      print_f64(sum);
      return 0;
    }
  )",
               "Other", 2, 2, 0.65, 0.00, 10.84, 0.05});

  // lud: blocked-style LU decomposition. Every compute kernel works
  // through an interior base pointer into the matrix (block offsets), so
  // only the initialization kernel is named-region applicable: 1 of 6.
  // The pivot reciprocal between kernels is glue-kernel fodder.
  W.push_back({"lud", "Rodinia", R"(
    double A[48][48];
    double prow[48];
    double pcol[48];
    double dsq[48];
    double xr[48];
    double pivbuf[2];
    int main() {
      int i; int j; int k;
      for (i = 0; i < 48; i++) {
        for (j = 0; j < 48; j++) {
          if (i == j)
            A[i][j] = 48.0 + (i % 7);
          else
            A[i][j] = ((i * 3 + j * 5) % 17) * 0.04;
        }
      }
      double *ab = (double*)A + 1;
      double *xp = (double*)((long)xr);
      for (k = 0; k < 47; k++) {
        pivbuf[0] = 1.0 / A[k][k];
        for (j = k + 1; j < 48; j++) {
          ab[k * 48 + j - 1] = ab[k * 48 + j - 1] * pivbuf[0];
          prow[j] = ab[k * 48 + j - 1];
        }
        for (i = k + 1; i < 48; i++)
          pcol[i] = ab[i * 48 + k - 1];
        for (i = k + 1; i < 48; i++) {
          for (j = k + 1; j < 48; j++)
            ab[i * 48 + j - 1] =
                ab[i * 48 + j - 1] - pcol[i] * prow[j];
        }
      }
      for (i = 0; i < 48; i++)
        dsq[i] = ab[i * 48 + i - 1] * ab[i * 48 + i - 1];
      for (i = 0; i < 48; i++)
        xp[i] = dsq[i] * 0.5 + 1.0;
      double sum = 0.0;
      for (i = 0; i < 48; i++)
        sum += xr[i];
      print_f64(sum);
      return 0;
    }
  )",
               "GPU", 6, 1, 3.77, 63.57, 91.56, 0.39});

  // nw: Needleman-Wunsch. Anti-diagonal wavefront with three rotating
  // buffers: the fill and extract kernels receive pointers that vary per
  // diagonal (phis), which no named-region technique can express (2 of 4
  // applicable) and which also pins the communication pattern cyclic —
  // matching the paper's poor nw results even after optimization.
  W.push_back({"nw", "Rodinia", R"(
    double ref[48][48];
    double res[96];
    int main() {
      int i; int d;
      for (i = 0; i < 48; i++) {
        int j;
        for (j = 0; j < 48; j++)
          ref[i][j] = ((i * 5 + j * 3) % 13) * 0.2 - 1.0;
      }
      double *b0 = (double*)malloc(96 * sizeof(double));
      double *b1 = (double*)malloc(96 * sizeof(double));
      double *b2 = (double*)malloc(96 * sizeof(double));
      for (i = 0; i < 96; i++) {
        b0[i] = 0.0 - i * 0.1;
        b1[i] = 0.0 - i * 0.1;
        b2[i] = 0.0;
      }
      double *prev2 = b0;
      double *prev = b1;
      double *cur = b2;
      for (d = 2; d < 95; d++) {
        int lo = d - 47;
        if (lo < 1)
          lo = 1;
        int hi = d - 1;
        if (hi > 47)
          hi = 47;
        launch nw_fill<<<1, 64>>>(cur, prev, prev2, lo, hi + 1, d);
        double *tmp = prev2;
        prev2 = prev;
        prev = cur;
        cur = tmp;
      }
      launch nw_out<<<1, 96>>>(prev, 96);
      double traceScore = 0.0;
      double ph = 0.3;
      for (i = 0; i < 96; i++) {
        int r;
        for (r = 0; r < 24; r++) {
          ph = ph * 0.93 + res[i] * 0.001;
          traceScore += ph * 0.01;
        }
      }
      free((char*)b0);
      free((char*)b1);
      free((char*)b2);
      print_f64(traceScore);
      return 0;
    }
    __kernel void nw_fill(double *curb, double *prevb, double *prev2b,
                          int lo, int hi, int d) {
      long t = __tid();
      long i = lo + t;
      if (i < hi) {
        double up = prevb[i] - 0.5;
        double left = prevb[i - 1] - 0.5;
        double diag = prev2b[i - 1] + ref[i][d - i];
        double best = up;
        if (left > best)
          best = left;
        if (diag > best)
          best = diag;
        curb[i] = best;
      }
    }
    __kernel void nw_out(double *prevb, int n) {
      long t = __tid();
      if (t < n)
        res[t] = prevb[t] * 0.5;
    }
  )",
               "Other", 4, 2, 0.00, 2.44, 100.00, 24.19});

  // srad: speckle-reducing anisotropic diffusion. The outer row loops
  // carry a bookkeeping recurrence, so the parallelizer extracts the
  // *inner* per-row loops — one kernel launch per row per stage per
  // timestep, the pattern behind the paper's catastrophic 4,437x
  // unoptimized slowdown. All compute kernels use interior pointers
  // (1 of 6 named-region applicable); a small CPU reduction per step
  // keeps one tiny unit cycling even after promotion.
  W.push_back({"srad", "Rodinia", R"(
    double img[48][48];
    double c[48][48];
    double dN[48][48];
    double dS[48][48];
    double dW[48][48];
    double dE[48][48];
    double rowsum[48];
    double q0buf[2];
    int main() {
      int i; int j; int t;
      double rkacc = 0.0;
      for (i = 0; i < 48; i++) {
        for (j = 0; j < 48; j++)
          img[i][j] = 1.0 + ((i * 7 + j * 11) % 19) * 0.05;
      }
      q0buf[0] = 0.5;
      double *ib = (double*)img + 49;
      double *cb = (double*)c + 49;
      double *dnb = (double*)dN + 1;
      double *dwb = (double*)dW + 1;
      for (t = 0; t < 16; t++) {
        for (i = 1; i < 47; i++) {
          rkacc = rkacc + 0.001;
          for (j = 1; j < 47; j++) {
            double cv = ib[(i - 1) * 48 + (j - 1)];
            double dn = ib[(i - 2) * 48 + (j - 1)] - cv;
            double ds = ib[i * 48 + (j - 1)] - cv;
            double dw = ib[(i - 1) * 48 + (j - 2)] - cv;
            double de = ib[(i - 1) * 48 + j] - cv;
            dN[i][j] = dn;
            dS[i][j] = ds;
            dW[i][j] = dw;
            dE[i][j] = de;
            double g2 = (dn * dn + ds * ds + dw * dw + de * de) /
                        (cv * cv + 0.0001);
            double q = (g2 - q0buf[0]) / (1.0 + q0buf[0] + 0.0001);
            cb[(i - 1) * 48 + (j - 1)] = 1.0 / (1.0 + q * q);
          }
        }
        for (i = 1; i < 47; i++) {
          rkacc = rkacc + 0.001;
          for (j = 1; j < 47; j++) {
            double div = dN[i][j] + dS[i][j] + dW[i][j] + dE[i][j];
            ib[(i - 1) * 48 + (j - 1)] =
                ib[(i - 1) * 48 + (j - 1)] +
                0.05 * cb[(i - 1) * 48 + (j - 1)] * div;
          }
        }
        for (i = 1; i < 47; i++) {
          rkacc = rkacc + 0.001;
          for (j = 1; j < 47; j++)
            dnb[i * 48 + j - 1] =
                dnb[i * 48 + j - 1] * 0.5 + dS[i][j] * 0.5;
        }
        for (i = 1; i < 47; i++) {
          rkacc = rkacc + 0.001;
          for (j = 1; j < 47; j++)
            dwb[i * 48 + j - 1] =
                dwb[i * 48 + j - 1] * 0.5 + dE[i][j] * 0.5;
        }
        for (i = 0; i < 48; i++) {
          double s = 0.0;
          for (j = 0; j < 48; j++)
            s += ib[i * 48 + j - 49] * 0.001;
          rowsum[i] = s;
        }
        double q0 = 0.0;
        for (i = 0; i < 48; i++)
          q0 += rowsum[i];
        q0buf[0] = q0 / 48.0 + 0.3;
      }
      double sum = rkacc;
      for (i = 0; i < 48; i++)
        for (j = 0; j < 48; j++)
          sum += img[i][j];
      print_f64(sum);
      return 0;
    }
  )",
               "Other", 6, 1, 0.00, 27.08, 100.00, 6.20});

  return W;
}
