//===- workloads/Runner.cpp - Workload execution harness ---------------------===//
//
// Part of the CGCM reproduction project.
//
//===----------------------------------------------------------------------===//

#include "workloads/Runner.h"

#include "exec/Machine.h"
#include "frontend/IRGen.h"
#include "support/ErrorHandling.h"

using namespace cgcm;

const char *cgcm::getConfigName(BenchConfig C) {
  switch (C) {
  case BenchConfig::Sequential:
    return "sequential";
  case BenchConfig::InspectorExecutor:
    return "inspector-executor";
  case BenchConfig::CGCMUnoptimized:
    return "cgcm-unoptimized";
  case BenchConfig::CGCMOptimized:
    return "cgcm-optimized";
  case BenchConfig::DemandPaged:
    return "demand-paged";
  }
  return "?";
}

WorkloadRun cgcm::runWorkload(const Workload &W, BenchConfig C,
                              const RunnerOptions &RO) {
  std::unique_ptr<Module> M = compileMiniC(W.Source, W.Name);
  WorkloadRun R;

  PipelineOptions Opts;
  LaunchPolicy Policy = LaunchPolicy::Managed;
  switch (C) {
  case BenchConfig::Sequential:
    // The paper's baseline is the original single-threaded program: no
    // parallelization, and any manual `launch` executes as the loop it
    // stands for (host memory, CPU cost, no transfer or launch overhead).
    Opts.Parallelize = false;
    Opts.Manage = false;
    Opts.Optimize = false;
    Policy = LaunchPolicy::CpuEmulation;
    break;
  case BenchConfig::InspectorExecutor:
    Opts.Manage = false;
    Opts.Optimize = false;
    Policy = LaunchPolicy::InspectorExecutor;
    break;
  case BenchConfig::CGCMUnoptimized:
    Opts.Optimize = false;
    break;
  case BenchConfig::CGCMOptimized:
    break;
  case BenchConfig::DemandPaged:
    // The extension needs no compiler-inserted communication at all.
    Opts.Manage = false;
    Opts.Optimize = false;
    Policy = LaunchPolicy::DemandManaged;
    break;
  }

  R.Pipeline = runCGCMPipeline(*M, Opts);
  for (const auto &F : M->functions())
    if (F->isKernel() && !F->isGlueKernel())
      ++R.StaticKernels;
  if (RO.PredictStaticCost)
    R.StaticCost = runCommCostAnalysis(*M);

  Machine Mach;
  Mach.setLaunchPolicy(Policy);
  Mach.setDispatchMode(RO.Dispatch);
  Mach.getRuntime().setXlatCacheEnabled(RO.XlatCache);
  Mach.setOpLimit(500u * 1000u * 1000u);
  if (RO.Devices > 1)
    Mach.setDevices(RO.Devices, RO.Placement);
  Mach.setAsyncTransfers(RO.AsyncStreams, RO.Coalesce);
  if (RO.Observer)
    Mach.getRuntime().setObserver(RO.Observer);
  Mach.loadModule(*M);
  Mach.run();
  R.Output = Mach.getOutput();
  R.Stats = Mach.getStats();
  R.TotalCycles = R.Stats.wallCycles();
  R.Ledger = Mach.getRuntime().getLedger();
  if (RO.PostRun)
    RO.PostRun(Mach);
  return R;
}

std::vector<LaunchApplicability>
cgcm::analyzeWorkloadApplicability(const Workload &W) {
  std::unique_ptr<Module> M = compileMiniC(W.Source, W.Name);
  PipelineOptions Opts;
  Opts.Manage = false;
  Opts.Optimize = false;
  runCGCMPipeline(*M, Opts);
  return analyzeModuleApplicability(*M);
}

double cgcm::measureSpeedup(const Workload &W, BenchConfig C,
                            const RunnerOptions &RO) {
  // The sequential baseline never uses the device, so async streams are
  // irrelevant to it; only the measured configuration gets the knobs.
  WorkloadRun Seq = runWorkload(W, BenchConfig::Sequential);
  WorkloadRun Run = runWorkload(W, C, RO);
  if (Run.Output != Seq.Output)
    reportFatalError("workload '" + W.Name + "' produced different output "
                     "under " + getConfigName(C));
  return Seq.TotalCycles / Run.TotalCycles;
}
