//===- workloads/Runner.h - Workload execution harness ----------------------===//
//
// Part of the CGCM reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Compiles and runs a workload under one of the paper's four evaluation
/// configurations and returns the modeled statistics. The same harness
/// backs the integration tests and every benchmark binary.
///
//===----------------------------------------------------------------------===//

#ifndef CGCM_WORKLOADS_RUNNER_H
#define CGCM_WORKLOADS_RUNNER_H

#include "analysis/commcost/CommCost.h"
#include "exec/Machine.h"
#include "gpusim/Timing.h"
#include "runtime/CGCMRuntime.h"
#include "runtime/TransferLedger.h"
#include "transform/Applicability.h"
#include "transform/Pipeline.h"
#include "workloads/Workloads.h"

#include <functional>
#include <string>
#include <vector>

namespace cgcm {

/// The execution configurations of Figure 4.
enum class BenchConfig {
  Sequential,        ///< Best sequential CPU-only execution (the baseline).
  InspectorExecutor, ///< Idealized inspector-executor (section 6.3).
  CGCMUnoptimized,   ///< Management only (Listing 3 communication).
  CGCMOptimized,     ///< Management + glue/alloca/map promotion.
  DemandPaged,       ///< DyManD-style extension (docs/Extensions.md).
};

const char *getConfigName(BenchConfig C);

struct WorkloadRun {
  std::string Output;
  ExecStats Stats;
  PipelineResult Pipeline;
  /// Modeled wall clock: equal to Stats.totalCycles() on synchronous
  /// runs, the overlap-aware Stats.wallCycles() on asynchronous ones.
  double TotalCycles = 0;
  unsigned StaticKernels = 0; ///< Kernel functions after parallelization.
  /// Per-site transfer accounting of the run (the dynamic ground truth
  /// the static predictor is validated against).
  TransferLedger Ledger;
  /// Static prediction computed on the exact module that executed
  /// (RunnerOptions::PredictStaticCost).
  CommCostReport StaticCost;
};

/// Execution knobs shared by every driver that uses the harness.
struct RunnerOptions {
  /// Asynchronous transfer engine streams (docs/TransferEngine.md);
  /// 0 keeps the default synchronous model.
  unsigned AsyncStreams = 0;
  bool Coalesce = true; ///< With AsyncStreams > 0: batch adjacent copies.
  /// Simulated GPUs in the device pool (docs/MultiGPU.md); 1 keeps the
  /// historical single-device machine, bit-for-bit.
  unsigned Devices = 1;
  /// Allocation-unit placement policy used when Devices > 1.
  PlacementPolicy Placement = PlacementPolicy::RoundRobin;
  /// Run the static communication-cost analysis over the post-pipeline
  /// module (before execution) and record it in WorkloadRun::StaticCost.
  bool PredictStaticCost = false;
  /// Interpreter dispatch strategy; Table and Switch are
  /// observationally identical (the identity suite checks this).
  DispatchMode Dispatch = DispatchMode::Table;
  /// Per-call-site address translation cache in the runtime.
  bool XlatCache = true;
  /// Observation hooks installed on the machine's runtime before the
  /// module loads, so declare-time events are seen too. The server's
  /// Session mirrors residency into the shared index this way
  /// (docs/Server.md); owned by the caller, must outlive the run.
  RuntimeObserver *Observer = nullptr;
  /// Invoked after execution with the machine still alive — the only
  /// window where a caller can sweep runtime invariants (RuntimeAuditor
  /// ::finish needs the runtime, device, and stats together).
  std::function<void(Machine &)> PostRun;
};

/// Compiles \p W from source and executes it under \p C.
WorkloadRun runWorkload(const Workload &W, BenchConfig C,
                        const RunnerOptions &RO = RunnerOptions());

/// Applicability of each framework per kernel launch for \p W (analyzed
/// on the unmanaged parallelized module).
std::vector<LaunchApplicability> analyzeWorkloadApplicability(const Workload &W);

/// Whole-program speedup of \p C over sequential for the same workload.
/// Aborts if the configuration changes program output; async runs must
/// stay bit-identical to synchronous ones (eager data movement).
double measureSpeedup(const Workload &W, BenchConfig C,
                      const RunnerOptions &RO = RunnerOptions());

} // namespace cgcm

#endif // CGCM_WORKLOADS_RUNNER_H
