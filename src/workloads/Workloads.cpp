//===- workloads/Workloads.cpp - Registry of the 24 programs ----------------===//
//
// Part of the CGCM reproduction project.
//
//===----------------------------------------------------------------------===//

#include "workloads/Workloads.h"

using namespace cgcm;

const std::vector<Workload> &cgcm::getWorkloads() {
  static const std::vector<Workload> All = [] {
    std::vector<Workload> W;
    auto Append = [&W](std::vector<Workload> Part) {
      for (Workload &P : Part)
        W.push_back(std::move(P));
    };
    Append(workload_sources::polybenchA());
    Append(workload_sources::polybenchB());
    Append(workload_sources::rodinia());
    Append(workload_sources::others());
    return W;
  }();
  return All;
}

const Workload *cgcm::findWorkload(const std::string &Name) {
  for (const Workload &W : getWorkloads())
    if (W.Name == Name)
      return &W;
  return nullptr;
}
