//===- workloads/Workloads.h - The 24 evaluation programs -------------------===//
//
// Part of the CGCM reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper evaluates CGCM on 24 programs from PolyBench (16), Rodinia
/// (6), StreamIt (1), and PARSEC (1). The original sources need native
/// compilation, OpenMP, and file inputs, so this module provides MiniC
/// re-implementations with the same loop and communication structure:
/// the same number of DOALL kernels (101 across the suite), the same
/// named-region / inspector-executor applicability per kernel, and the
/// same performance-limiting shape (GPU-bound, communication-bound, or
/// CPU-bound). Every program prints a checksum so the harness can verify
/// all execution configurations agree bit-for-bit.
///
/// Each workload records the paper's Table 3 reference values for
/// comparison in EXPERIMENTS.md and the benchmark output.
///
//===----------------------------------------------------------------------===//

#ifndef CGCM_WORKLOADS_WORKLOADS_H
#define CGCM_WORKLOADS_WORKLOADS_H

#include <string>
#include <vector>

namespace cgcm {

struct Workload {
  std::string Name;
  std::string Suite; ///< PolyBench | Rodinia | StreamIt | PARSEC
  std::string Source; ///< MiniC implementation.

  //===--------------------------------------------------------------------===//
  // Paper reference values (Table 3)
  //===--------------------------------------------------------------------===//

  /// "GPU", "Comm.", or "Other".
  std::string PaperLimitingFactor;
  /// Static kernels the DOALL parallelizer creates (CGCM manages all).
  unsigned PaperKernels = 0;
  /// Kernels the named-region / inspector-executor techniques can handle.
  unsigned PaperNamedRegionKernels = 0;
  /// GPU and communication time as % of total (unoptimized / optimized).
  double PaperGpuPctUnopt = 0, PaperGpuPctOpt = 0;
  double PaperCommPctUnopt = 0, PaperCommPctOpt = 0;
};

/// The full suite, in Table 3 order.
const std::vector<Workload> &getWorkloads();

/// Lookup by name; null if unknown.
const Workload *findWorkload(const std::string &Name);

namespace workload_sources {
// Defined across the suite translation units.
std::vector<Workload> polybenchA(); ///< adi .. gemm
std::vector<Workload> polybenchB(); ///< gemver .. 3mm
std::vector<Workload> rodinia();
std::vector<Workload> others(); ///< fm, blackscholes
} // namespace workload_sources

} // namespace cgcm

#endif // CGCM_WORKLOADS_WORKLOADS_H
