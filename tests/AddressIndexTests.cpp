//===- tests/AddressIndexTests.cpp - Radix index + xlat cache tests -----------===//
//
// Part of the CGCM reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Exact-value unit tests for the two hot-path accelerators in front of
/// the runtime's balanced tree:
///
///  * AddressIndex (runtime/AddressIndex.h): the page-granular radix
///    index. Tests pin the answer model — resolved hit, resolved miss,
///    ambiguous fallback, coverage-window fallback — on page-boundary
///    straddles, unaligned interior pointers, shared pages, and dense
///    insert/erase churn, cross-checked against a reference
///    greatest-LTE scan.
///
///  * The per-call-site translation cache (CGCMRuntime): staleness
///    tests proving a cached translation never survives free, realloc,
///    zombie eviction, or address reuse, and that the zombie-map fatal
///    still fires with a warm cache. Cache on/off must be
///    observationally identical.
///
//===----------------------------------------------------------------------===//

#include "gpusim/GPUDevice.h"
#include "runtime/AddressIndex.h"
#include "runtime/CGCMRuntime.h"

#include <gtest/gtest.h>

#include <map>

using namespace cgcm;

namespace {

//===----------------------------------------------------------------------===//
// AddressIndex
//===----------------------------------------------------------------------===//

/// Owns the unit map the index points into and keeps both in sync the
/// way the runtime does: tree first, then index.
class AddressIndexTest : public ::testing::Test {
protected:
  std::map<uint64_t, AllocUnitInfo> Units;
  AddressIndex Index;

  const AllocUnitInfo *track(uint64_t Base, uint64_t Size) {
    AllocUnitInfo Info;
    Info.Base = Base;
    Info.Size = Size;
    auto [It, Inserted] = Units.emplace(Base, Info);
    EXPECT_TRUE(Inserted);
    Index.insert(&It->second);
    return &It->second;
  }

  void erase(uint64_t Base) {
    auto It = Units.find(Base);
    ASSERT_NE(It, Units.end());
    uint64_t Size = It->second.Size;
    Units.erase(It); // Tree first: erase() recomputes pages from it.
    Index.erase(Base, Size, Units);
  }

  /// The reference answer: greatest-LTE over the unit map.
  const AllocUnitInfo *referenceLookup(uint64_t Ptr) const {
    auto It = Units.upper_bound(Ptr);
    if (It == Units.begin())
      return nullptr;
    --It;
    const AllocUnitInfo &U = It->second;
    return (Ptr >= U.Base && Ptr < U.Base + U.Size) ? &U : nullptr;
  }
};

TEST_F(AddressIndexTest, EmptyIndexResolvesNoUnit) {
  AddressIndex::Probe P = Index.probe(0x5000);
  EXPECT_TRUE(P.Resolved);
  EXPECT_EQ(P.Unit, nullptr);
  EXPECT_EQ(P.Cost, 1u);

  // Past the coverage window no indexed unit can exist either.
  P = Index.probe(AddressIndex::CoverageLimit + 123);
  EXPECT_TRUE(P.Resolved);
  EXPECT_EQ(P.Unit, nullptr);
  EXPECT_TRUE(Index.coversAll());
}

TEST_F(AddressIndexTest, UnalignedInteriorPointersResolveExactly) {
  // An unaligned unit inside one page: every interior byte hits, the
  // bytes on either side miss *exactly* (same page, resolved null).
  const AllocUnitInfo *U = track(0x10123, 0x85);

  EXPECT_EQ(Index.probe(0x10123).Unit, U);
  EXPECT_EQ(Index.probe(0x10123 + 0x84).Unit, U);
  EXPECT_EQ(Index.probe(0x10150).Unit, U);

  AddressIndex::Probe Before = Index.probe(0x10122);
  EXPECT_TRUE(Before.Resolved);
  EXPECT_EQ(Before.Unit, nullptr);
  AddressIndex::Probe PastEnd = Index.probe(0x10123 + 0x85);
  EXPECT_TRUE(PastEnd.Resolved);
  EXPECT_EQ(PastEnd.Unit, nullptr);
}

TEST_F(AddressIndexTest, PageBoundaryStraddleHitsOnBothSides) {
  // [0x20F80, 0x21080) straddles the page boundary at 0x21000.
  const AllocUnitInfo *U = track(0x20F80, 0x100);

  EXPECT_EQ(Index.probe(0x20F80).Unit, U);  // First byte, low page.
  EXPECT_EQ(Index.probe(0x20FFF).Unit, U);  // Last byte of low page.
  EXPECT_EQ(Index.probe(0x21000).Unit, U);  // First byte of high page.
  EXPECT_EQ(Index.probe(0x2107F).Unit, U);  // Last byte.
  EXPECT_EQ(Index.probe(0x21080).Unit, nullptr);
  EXPECT_TRUE(Index.probe(0x21080).Resolved);
}

TEST_F(AddressIndexTest, LeafBoundaryStraddleHitsOnBothSides) {
  // A leaf covers 2 MiB; a unit straddling that boundary must be
  // indexed in both leaves.
  uint64_t LeafSpan = AddressIndex::PageSize * AddressIndex::LeafPages;
  const AllocUnitInfo *U = track(LeafSpan - 0x100, 0x200);
  EXPECT_EQ(Index.probe(LeafSpan - 1).Unit, U);
  EXPECT_EQ(Index.probe(LeafSpan).Unit, U);
  EXPECT_EQ(Index.probe(LeafSpan + 0xFF).Unit, U);
  EXPECT_EQ(Index.probe(LeafSpan + 0x100).Unit, nullptr);
}

TEST_F(AddressIndexTest, SharedPageFallsBackAndRecoversOnErase) {
  // Two units in one page: probes of that page are unresolved (the
  // tree must disambiguate), but pages the straddler owns alone stay
  // exact.
  const AllocUnitInfo *A = track(0x30010, 0x20);
  const AllocUnitInfo *B = track(0x30800, 0x1000); // Into page 0x31 too.

  EXPECT_FALSE(Index.probe(0x30010).Resolved);
  EXPECT_FALSE(Index.probe(0x30900).Resolved); // B, but shared page.
  EXPECT_EQ(Index.probe(0x31000).Unit, B);     // B's exclusive page.

  // Erasing A recomputes the shared page from the tree: B resolves
  // again instead of the page staying ambiguous forever.
  erase(0x30010);
  AddressIndex::Probe P = Index.probe(0x30900);
  EXPECT_TRUE(P.Resolved);
  EXPECT_EQ(P.Unit, B);
  P = Index.probe(0x30010);
  EXPECT_TRUE(P.Resolved);
  EXPECT_EQ(P.Unit, nullptr);
  (void)A;
}

TEST_F(AddressIndexTest, OutOfWindowUnitDegradesPermanently) {
  const AllocUnitInfo *In = track(0x40000, 0x100);
  EXPECT_EQ(Index.probe(0x40000).Unit, In);

  // A unit reaching past the 4 GiB window cannot be indexed; from then
  // on every probe must consult the tree (a page hit could hide it).
  track(AddressIndex::CoverageLimit - 0x10, 0x100);
  EXPECT_FALSE(Index.coversAll());
  EXPECT_FALSE(Index.probe(0x40000).Resolved);
  EXPECT_FALSE(Index.probe(0x123).Resolved);

  // Rebuild from a tree holding only in-window units restores coverage.
  erase(AddressIndex::CoverageLimit - 0x10);
  Index.rebuild(Units);
  EXPECT_TRUE(Index.coversAll());
  EXPECT_EQ(Index.probe(0x40000).Unit, In);
}

TEST_F(AddressIndexTest, ZeroSizedUnitOccupiesNoPage) {
  track(0x50000, 0);
  AddressIndex::Probe P = Index.probe(0x50000);
  EXPECT_TRUE(P.Resolved);
  EXPECT_EQ(P.Unit, nullptr);
  EXPECT_TRUE(Index.coversAll());
}

TEST_F(AddressIndexTest, DenseChurnMatchesReferenceLookup) {
  // Dense insert/erase churn over a few leaves: after every mutation
  // each resolved probe must equal the reference greatest-LTE answer,
  // and unresolved probes may only occur on genuinely shared pages.
  uint64_t Base = 0x100000;
  std::vector<uint64_t> Bases;
  for (unsigned I = 0; I != 64; ++I) {
    uint64_t Size = 0x300 + I * 7; // Unaligned, many straddles.
    Bases.push_back(Base);
    track(Base, Size);
    Base += Size + (I % 3) * 0x40;
  }
  // Erase every other unit, then re-track into the gaps (address
  // reuse), checking probes as we go.
  for (unsigned I = 0; I < Bases.size(); I += 2)
    erase(Bases[I]);
  for (unsigned I = 0; I < Bases.size(); I += 4)
    track(Bases[I], 0x80);

  for (uint64_t Ptr = 0x100000 - 8; Ptr < Base + 16; Ptr += 61) {
    AddressIndex::Probe P = Index.probe(Ptr);
    if (P.Resolved)
      EXPECT_EQ(P.Unit, referenceLookup(Ptr)) << "ptr " << std::hex << Ptr;
  }
}

//===----------------------------------------------------------------------===//
// Per-call-site translation cache staleness
//===----------------------------------------------------------------------===//

class XlatCacheTest : public ::testing::Test {
protected:
  TimingModel TM;
  ExecStats Stats;
  SimMemory Host{HostAddressBase, "host"};
  GPUDevice Device{TM, Stats};
  CGCMRuntime RT{Host, Device, TM, Stats};

  uint64_t heapUnit(uint64_t Size, SourceLoc Loc = SourceLoc::none()) {
    uint64_t P = Host.allocate(Size);
    RT.notifyHeapAlloc(P, Size, Loc);
    return P;
  }
};

TEST_F(XlatCacheTest, FreeThenAddressReuseNeverServesStaleTranslation) {
  ASSERT_TRUE(RT.isXlatCacheEnabled());
  uint64_t P = heapUnit(256, {10, 1});
  RT.map(P); // Warms the site's cached translation with [P, P+256).
  RT.unmap(P);
  RT.release(P);
  RT.notifyHeapFree(P);

  // The allocator hands out an overlapping but different range. A
  // stale cached translation would still claim [P, P+256).
  RT.notifyHeapAlloc(P + 64, 128, {11, 1});
  const AllocUnitInfo *Info = RT.lookup(P + 100);
  ASSERT_NE(Info, nullptr);
  EXPECT_EQ(Info->Base, P + 64);
  EXPECT_EQ(Info->Size, 128u);
  EXPECT_EQ(RT.lookup(P), nullptr); // Before the new unit: no owner.
  RT.notifyHeapFree(P + 64);
}

TEST_F(XlatCacheTest, ReallocInvalidatesCachedTranslation) {
  uint64_t P = heapUnit(256, {20, 1});
  RT.map(P);
  RT.unmap(P);
  RT.release(P);

  uint64_t Q = Host.allocate(512);
  RT.notifyHeapRealloc(P, Q, 512);
  EXPECT_EQ(RT.lookup(P), nullptr);
  const AllocUnitInfo *Info = RT.lookup(Q + 500);
  ASSERT_NE(Info, nullptr);
  EXPECT_EQ(Info->Base, Q);
  EXPECT_EQ(Info->Size, 512u);
  RT.notifyHeapFree(Q);
}

TEST_F(XlatCacheTest, ZombieMapFatalStillFiresWithWarmCache) {
  // Freeing a mapped unit leaves a host-dead zombie; the cached
  // translation points at the live node, so map's host-dead check must
  // still fire even though the site's cache is warm.
  uint64_t P = heapUnit(128, {30, 1});
  RT.map(P); // Warm cache, RefCount 1.
  RT.notifyHeapFree(P);
  EXPECT_DEATH(RT.map(P), "host memory was already freed");
}

TEST_F(XlatCacheTest, EvictedZombieAddressReuseResolvesNewUnit) {
  uint64_t P = heapUnit(128, {40, 1});
  RT.map(P);
  RT.notifyHeapFree(P); // Zombie: RefCount 1, HostDead.

  // The allocator reuses the range: tracking evicts the zombie, and
  // the site's stale translation must die with it.
  RT.notifyHeapAlloc(P, 64, {41, 1});
  const AllocUnitInfo *Info = RT.lookup(P + 10);
  ASSERT_NE(Info, nullptr);
  EXPECT_EQ(Info->Size, 64u);
  EXPECT_EQ(Info->RefCount, 0u);
  EXPECT_FALSE(Info->HostDead);
  uint64_t Dev = RT.map(P);
  EXPECT_TRUE(isDeviceAddress(Dev));
  RT.unmap(P);
  RT.release(P);
  RT.notifyHeapFree(P);
}

TEST_F(XlatCacheTest, CacheOnAndOffAreObservationallyIdentical) {
  // The cache is a pure memoization of lookup(): the same call
  // sequence must yield the same translations and the same ledger
  // either way.
  auto Run = [](bool Cache, std::vector<uint64_t> &DevPtrs,
                uint64_t &BytesHtoD, uint64_t &BytesDtoH) {
    TimingModel TM;
    ExecStats Stats;
    SimMemory Host{HostAddressBase, "host"};
    GPUDevice Device{TM, Stats};
    CGCMRuntime RT{Host, Device, TM, Stats};
    RT.setXlatCacheEnabled(Cache);

    uint64_t A = Host.allocate(300);
    RT.notifyHeapAlloc(A, 300, {50, 1});
    uint64_t B = Host.allocate(77);
    RT.notifyHeapAlloc(B, 77, {51, 1});

    DevPtrs.push_back(RT.map(A + 5));
    DevPtrs.push_back(RT.map(B));
    DevPtrs.push_back(RT.map(A + 299)); // Cache hit when enabled.
    RT.onKernelLaunch();
    RT.unmap(A);
    RT.unmap(B + 76);
    RT.release(A);
    RT.release(A);
    RT.release(B);
    DevPtrs.push_back(RT.map(B + 13)); // Fresh map after release-at-zero.
    RT.unmap(B);
    RT.release(B);
    RT.notifyHeapFree(A);
    RT.notifyHeapFree(B);
    BytesHtoD = RT.getLedger().totalBytesHtoD();
    BytesDtoH = RT.getLedger().totalBytesDtoH();
  };

  std::vector<uint64_t> WithCache, Without;
  uint64_t HtoDOn = 0, DtoHOn = 0, HtoDOff = 0, DtoHOff = 0;
  Run(true, WithCache, HtoDOn, DtoHOn);
  Run(false, Without, HtoDOff, DtoHOff);
  EXPECT_EQ(WithCache, Without);
  EXPECT_EQ(HtoDOn, HtoDOff);
  EXPECT_EQ(DtoHOn, DtoHOff);
}

} // namespace
