//===- tests/AnalysisTests.cpp - Analysis unit tests ---------------------------===//
//
// Part of the CGCM reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Unit tests for the analyses: dominator tree and frontiers, natural
/// loops, the call graph (including recursion detection), memory-object
/// rooting, and the use-based pointer-degree type inference of paper
/// section 4 — including the subversive-cast cases that motivate it.
///
//===----------------------------------------------------------------------===//

#include "analysis/CallGraph.h"
#include "analysis/Dominators.h"
#include "analysis/LoopInfo.h"
#include "analysis/MemoryObjects.h"
#include "analysis/TypeInference.h"
#include "frontend/IRGen.h"
#include "transform/Mem2Reg.h"

#include <gtest/gtest.h>

using namespace cgcm;

namespace {

/// Finds a block by name within a function.
BasicBlock *blockNamed(Function &F, const std::string &Name) {
  for (const auto &BB : F)
    if (BB->getName() == Name)
      return BB.get();
  return nullptr;
}

TEST(Dominators, DiamondCFG) {
  auto M = compileMiniC(R"(
    int main() {
      int x = 1;
      if (x > 0)
        x = 2;
      else
        x = 3;
      return x;
    }
  )",
                        "dom");
  Function *F = M->getFunction("main");
  promoteAllocasToRegisters(*F);
  DominatorTree DT(*F);
  BasicBlock *Entry = F->getEntryBlock();
  BasicBlock *Then = blockNamed(*F, "if.then");
  BasicBlock *Else = blockNamed(*F, "if.else");
  BasicBlock *End = blockNamed(*F, "if.end");
  ASSERT_TRUE(Then && Else && End);
  EXPECT_TRUE(DT.dominates(Entry, Then));
  EXPECT_TRUE(DT.dominates(Entry, End));
  EXPECT_FALSE(DT.dominates(Then, End));
  EXPECT_FALSE(DT.dominates(Then, Else));
  EXPECT_EQ(DT.getIDom(End), Entry);
  // The join block is in the frontier of both arms.
  EXPECT_TRUE(DT.getFrontier(Then).count(End));
  EXPECT_TRUE(DT.getFrontier(Else).count(End));
}

TEST(Dominators, ReversePostOrderStartsAtEntry) {
  auto M = compileMiniC(
      "int main() { int i; int s = 0; for (i = 0; i < 4; i++) s += i; "
      "return s; }",
      "rpo");
  Function *F = M->getFunction("main");
  promoteAllocasToRegisters(*F);
  DominatorTree DT(*F);
  ASSERT_FALSE(DT.getReversePostOrder().empty());
  EXPECT_EQ(DT.getReversePostOrder().front(), F->getEntryBlock());
  // Every reachable block appears exactly once.
  EXPECT_EQ(DT.getReversePostOrder().size(), F->size());
}

TEST(LoopInfoTest, FindsNestAndStructure) {
  auto M = compileMiniC(R"(
    double A[8][8];
    int main() {
      int i; int j;
      for (i = 0; i < 8; i++) {
        for (j = 0; j < 8; j++)
          A[i][j] = i + j;
      }
      return 0;
    }
  )",
                        "loops");
  Function *F = M->getFunction("main");
  promoteAllocasToRegisters(*F);
  DominatorTree DT(*F);
  LoopInfo LI(*F, DT);
  ASSERT_EQ(LI.getLoops().size(), 2u);
  std::vector<Loop *> Top = LI.getTopLevelLoops();
  ASSERT_EQ(Top.size(), 1u);
  Loop *Outer = Top[0];
  ASSERT_EQ(Outer->getSubLoops().size(), 1u);
  Loop *Inner = Outer->getSubLoops()[0];
  EXPECT_EQ(Inner->getParentLoop(), Outer);
  EXPECT_EQ(Outer->getDepth(), 0u);
  EXPECT_EQ(Inner->getDepth(), 1u);
  EXPECT_TRUE(Outer->contains(Inner));
  EXPECT_FALSE(Inner->contains(Outer));
  // Preheaders, latches, exits.
  EXPECT_NE(Outer->getPreheader(), nullptr);
  EXPECT_EQ(Outer->getLatches().size(), 1u);
  EXPECT_EQ(Outer->getExitBlocks().size(), 1u);
  EXPECT_EQ(LI.getLoopFor(Inner->getHeader()), Inner);
}

TEST(CallGraphTest, BottomUpOrderAndRecursion) {
  auto M = compileMiniC(R"(
    int leaf(int x) { return x + 1; }
    int mid(int x) { return leaf(x) * 2; }
    int rec(int x) { if (x <= 0) return 1; return rec(x - 1) + mid(x); }
    int main() { return rec(3); }
  )",
                        "cg");
  CallGraph CG(*M);
  Function *Leaf = M->getFunction("leaf");
  Function *Mid = M->getFunction("mid");
  Function *Rec = M->getFunction("rec");
  Function *Main = M->getFunction("main");
  EXPECT_FALSE(CG.isRecursive(Leaf));
  EXPECT_FALSE(CG.isRecursive(Mid));
  EXPECT_TRUE(CG.isRecursive(Rec));
  EXPECT_FALSE(CG.isRecursive(Main));
  EXPECT_EQ(CG.getCallers(Leaf).size(), 1u);
  EXPECT_EQ(CG.getCallers(Mid).size(), 1u);
  // Bottom-up: leaf before mid before main.
  const auto &Order = CG.getBottomUpOrder();
  auto Pos = [&](Function *F) {
    return std::find(Order.begin(), Order.end(), F) - Order.begin();
  };
  EXPECT_LT(Pos(Leaf), Pos(Mid));
  EXPECT_LT(Pos(Mid), Pos(Main));
}

TEST(MemoryObjectsTest, RootsThroughCastsAndGeps) {
  auto M = compileMiniC(R"(
    double G[16];
    int main() {
      double *p = (double*)G + 3;
      double *q = (double*)((long)p + 8);
      double *h = (double*)malloc(64);
      *q = 1.0;
      *h = 2.0;
      return 0;
    }
  )",
                        "mo");
  Function *F = M->getFunction("main");
  promoteAllocasToRegisters(*F);
  const GlobalVariable *G = M->getGlobal("G");
  MemoryObject GObj, HObj;
  for (Instruction *I : F->instructions()) {
    if (auto *SI = dyn_cast<StoreInst>(I)) {
      MemoryObject O = findMemoryObject(SI->getPointerOperand());
      if (O.Root == G)
        GObj = O;
      else
        HObj = O;
    }
  }
  EXPECT_EQ(GObj.K, MemoryObject::Kind::Global);
  EXPECT_EQ(GObj.Root, G);
  EXPECT_EQ(HObj.K, MemoryObject::Kind::HeapSite);
  EXPECT_FALSE(mayAlias(GObj, HObj));
  EXPECT_TRUE(mayAlias(GObj, GObj));
}

TEST(MemoryObjectsTest, UnknownRootsAliasEverything) {
  auto M = compileMiniC(R"(
    double *table[4];
    int main() {
      double *p = table[2];
      *p = 1.0;
      return 0;
    }
  )",
                        "mo2");
  Function *F = M->getFunction("main");
  promoteAllocasToRegisters(*F);
  MemoryObject Loaded;
  for (Instruction *I : F->instructions())
    if (auto *SI = dyn_cast<StoreInst>(I))
      if (SI->getValueOperand()->getType()->isDoubleTy())
        Loaded = findMemoryObject(SI->getPointerOperand());
  EXPECT_FALSE(Loaded.isIdentified());
  MemoryObject G;
  G.K = MemoryObject::Kind::Global;
  G.Root = M->getGlobal("table");
  EXPECT_TRUE(mayAlias(Loaded, G));
}

//===----------------------------------------------------------------------===//
// Type inference (paper section 4)
//===----------------------------------------------------------------------===//

KernelLiveIns inferFor(Module &M, const std::string &KernelName) {
  Function *K = M.getFunction(KernelName);
  EXPECT_NE(K, nullptr);
  return analyzeKernelLiveIns(*K);
}

TEST(TypeInferenceTest, ScalarPointerAndDoublePointer) {
  auto M = compileMiniC(R"(
    __kernel void k(double *a, double **rows, long n, double scale) {
      long i = __tid();
      if (i < n) {
        a[i] = a[i] * scale;
        rows[0][i] = a[i];
      }
    }
    int main() { return 0; }
  )",
                        "ti");
  promoteAllocasToRegisters(*M);
  KernelLiveIns LI = inferFor(*M, "k");
  ASSERT_EQ(LI.ArgDegrees.size(), 4u);
  EXPECT_EQ(LI.ArgDegrees[0], PointerDegree::Pointer);
  EXPECT_EQ(LI.ArgDegrees[1], PointerDegree::DoublePointer);
  EXPECT_EQ(LI.ArgDegrees[2], PointerDegree::Scalar);
  EXPECT_EQ(LI.ArgDegrees[3], PointerDegree::Scalar);
}

TEST(TypeInferenceTest, SeesThroughSubversiveCasts) {
  // The declared type of `a` is long, but it flows through arithmetic
  // and an inttoptr to a store address: use-based inference calls it a
  // pointer anyway. This is the paper's core motivation for ignoring
  // the C type system.
  auto M = compileMiniC(R"(
    __kernel void k(long a, long n) {
      long i = __tid();
      if (i < n) {
        double *p = (double*)(a + i * 8);
        *p = 1.0;
      }
    }
    int main() { return 0; }
  )",
                        "ti2");
  promoteAllocasToRegisters(*M);
  KernelLiveIns LI = inferFor(*M, "k");
  EXPECT_EQ(LI.ArgDegrees[0], PointerDegree::Pointer);
  EXPECT_EQ(LI.ArgDegrees[1], PointerDegree::Scalar);
}

TEST(TypeInferenceTest, GlobalsAreLiveInsWithDegrees) {
  auto M = compileMiniC(R"(
    double data[32];
    double *table[4];
    int counter[1];
    __kernel void k(long n) {
      long i = __tid();
      if (i < n) {
        data[i] = table[0][i] + counter[0];
      }
    }
    int main() { return 0; }
  )",
                        "ti3");
  promoteAllocasToRegisters(*M);
  KernelLiveIns LI = inferFor(*M, "k");
  const GlobalVariable *Data = M->getGlobal("data");
  const GlobalVariable *Table = M->getGlobal("table");
  const GlobalVariable *Counter = M->getGlobal("counter");
  ASSERT_EQ(LI.GlobalDegrees.size(), 3u);
  EXPECT_EQ(LI.GlobalDegrees.at(Data), PointerDegree::Pointer);
  EXPECT_EQ(LI.GlobalDegrees.at(Table), PointerDegree::DoublePointer);
  EXPECT_EQ(LI.GlobalDegrees.at(Counter), PointerDegree::Pointer);
}

TEST(TypeInferenceTest, FlowsThroughDeviceCalls) {
  auto M = compileMiniC(R"(
    void helper(double *p, long i) { p[i] = 1.0; }
    __kernel void k(double *a, long n) {
      long i = __tid();
      if (i < n)
        helper(a, i);
    }
    int main() { return 0; }
  )",
                        "ti4");
  promoteAllocasToRegisters(*M);
  KernelLiveIns LI = inferFor(*M, "k");
  EXPECT_EQ(LI.ArgDegrees[0], PointerDegree::Pointer);
  EXPECT_EQ(LI.DeviceFunctions.size(), 2u); // Kernel + helper.
}

TEST(TypeInferenceTest, TripleIndirectionIsDeeper) {
  auto M = compileMiniC(R"(
    __kernel void k(double ***ppp) {
      ppp[0][0][0] = 1.0;
    }
    int main() { return 0; }
  )",
                        "ti5");
  promoteAllocasToRegisters(*M);
  KernelLiveIns LI = inferFor(*M, "k");
  EXPECT_EQ(LI.ArgDegrees[0], PointerDegree::Deeper);
}

} // namespace
