//===- tests/CheckerTests.cpp - Static checker tests ---------------------------===//
//
// Part of the CGCM reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests for the static checkers (docs/StaticAnalysis.md): negative cases
/// that must produce specific diagnostic IDs with MiniC source positions,
/// a clean-analysis sweep over all 24 pipeline-compiled workloads, and a
/// fault-injection sweep proving that deleting any single release the
/// management pass inserted is caught by the soundness dataflow.
///
//===----------------------------------------------------------------------===//

#include "analysis/checkers/Checkers.h"
#include "frontend/IRGen.h"
#include "ir/IRBuilder.h"
#include "ir/IRParser.h"
#include "ir/Verifier.h"
#include "transform/Mem2Reg.h"
#include "transform/Pipeline.h"
#include "workloads/Workloads.h"

#include <gtest/gtest.h>

#include <set>

using namespace cgcm;

namespace {

/// Returns the first diagnostic with \p ID, or null.
const Diagnostic *findDiag(const DiagnosticEngine &DE, const std::string &ID) {
  for (const Diagnostic &D : DE.getDiagnostics())
    if (D.ID == ID)
      return &D;
  return nullptr;
}

std::string renderAll(const DiagnosticEngine &DE) {
  std::ostringstream OS;
  DE.print(OS);
  return OS.str();
}

/// Every release call in module order (what the fault injector deletes).
std::vector<Instruction *> releaseCalls(Module &M) {
  std::vector<Instruction *> Calls;
  for (const auto &F : M.functions())
    for (const auto &BB : *F)
      for (const auto &I : *BB)
        if (const auto *CI = dyn_cast<CallInst>(I.get())) {
          const std::string &N = CI->getCallee()->getName();
          if (N == "cgcm_release" || N == "cgcm_release_array")
            Calls.push_back(I.get());
        }
  return Calls;
}

/// The full --analyze schedule on an already-pipelined module.
void analyzePipelined(const Module &M, const DOALLStats &DS,
                      DiagnosticEngine &DE) {
  checkCGCMRestrictions(M, DE);
  checkCommunicationSoundness(M, DE);
  std::set<const Function *> Doall(DS.Kernels.begin(), DS.Kernels.end());
  for (const auto &F : M.functions()) {
    if (!F->isKernel() || F->isDeclaration() || F->isGlueKernel())
      continue;
    checkKernelRaces(M, *F,
                     Doall.count(F.get()) ? RaceCheckMode::Strict
                                          : RaceCheckMode::Conservative,
                     DE);
  }
}

//===----------------------------------------------------------------------===//
// Negative cases: each must fire its diagnostic ID at the MiniC position.
//===----------------------------------------------------------------------===//

TEST(CheckerNegative, MissingMapAtUnmanagedLaunch) {
  // Management never ran, so the launch passes raw host pointers.
  auto M = compileMiniC(R"(__kernel void k(double *p, long n) {
  long i = __tid();
  if (i < n) p[i] = p[i] + 1.0;
}
int main() {
  double *p = (double*)malloc(64);
  launch k<<<1, 8>>>(p, 8);
  return 0;
}
)",
                        "missing_map");
  promoteAllocasToRegisters(*M);
  DiagnosticEngine DE;
  checkCommunicationSoundness(*M, DE);
  const Diagnostic *D = findDiag(DE, diag::MissingMap);
  ASSERT_NE(D, nullptr) << renderAll(DE);
  EXPECT_EQ(D->Severity, DiagSeverity::Error);
  EXPECT_TRUE(D->Loc.isValid());
  EXPECT_EQ(D->Loc.Line, 7u) << D->getString(); // The `launch` statement.
  EXPECT_EQ(D->FunctionName, "main");
}

TEST(CheckerNegative, MissingReleaseWhenOneIsDeleted) {
  auto M = compileMiniC(R"(__kernel void k(double *p, long n) {
  long i = __tid();
  if (i < n) p[i] = p[i] + 1.0;
}
int main() {
  double *p = (double*)malloc(64);
  launch k<<<1, 8>>>(p, 8);
  return 0;
}
)",
                        "missing_release");
  promoteAllocasToRegisters(*M);
  insertCommunicationManagement(*M);
  std::vector<Instruction *> Releases = releaseCalls(*M);
  ASSERT_FALSE(Releases.empty());
  Releases.front()->getParent()->remove(Releases.front());

  DiagnosticEngine DE;
  checkCommunicationSoundness(*M, DE);
  const Diagnostic *D = findDiag(DE, diag::MissingRelease);
  ASSERT_NE(D, nullptr) << renderAll(DE);
  EXPECT_EQ(D->FunctionName, "main");
  EXPECT_TRUE(D->Loc.isValid()) << D->getString(); // The `return` statement.
}

TEST(CheckerNegative, DoubleReleaseWhenOneIsDuplicated) {
  auto M = compileMiniC(R"(__kernel void k(double *p, long n) {
  long i = __tid();
  if (i < n) p[i] = p[i] + 1.0;
}
int main() {
  double *p = (double*)malloc(64);
  launch k<<<1, 8>>>(p, 8);
  return 0;
}
)",
                        "double_release");
  promoteAllocasToRegisters(*M);
  insertCommunicationManagement(*M);
  std::vector<Instruction *> Releases = releaseCalls(*M);
  ASSERT_FALSE(Releases.empty());
  auto *CI = cast<CallInst>(Releases.front());
  IRBuilder B(*M);
  B.setInsertPoint(CI->getParent()->getTerminator());
  B.setCurrentLoc(CI->getLoc());
  B.createCall(CI->getCallee(), {CI->getArg(0)});

  DiagnosticEngine DE;
  checkCommunicationSoundness(*M, DE);
  const Diagnostic *D = findDiag(DE, diag::DoubleRelease);
  ASSERT_NE(D, nullptr) << renderAll(DE);
  EXPECT_TRUE(D->Loc.isValid());
}

TEST(CheckerNegative, UseAfterReleaseWhenReleaseMovesBeforeLaunch) {
  auto M = compileMiniC(R"(__kernel void k(double *p, long n) {
  long i = __tid();
  if (i < n) p[i] = p[i] + 1.0;
}
int main() {
  double *p = (double*)malloc(64);
  launch k<<<1, 8>>>(p, 8);
  return 0;
}
)",
                        "use_after_release");
  promoteAllocasToRegisters(*M);
  insertCommunicationManagement(*M);
  // Hoist the release above the launch: the map call's result is then a
  // dangling device pointer at the launch.
  Instruction *Launch = nullptr;
  for (Instruction *I : M->getFunction("main")->instructions())
    if (isa<KernelLaunchInst>(I))
      Launch = I;
  ASSERT_NE(Launch, nullptr);
  std::vector<Instruction *> Releases = releaseCalls(*M);
  ASSERT_FALSE(Releases.empty());
  BasicBlock *BB = Releases.front()->getParent();
  BB->insertBefore(Launch, BB->remove(Releases.front()));

  DiagnosticEngine DE;
  checkCommunicationSoundness(*M, DE);
  const Diagnostic *D = findDiag(DE, diag::UseAfterRelease);
  ASSERT_NE(D, nullptr) << renderAll(DE);
  EXPECT_TRUE(D->Loc.isValid());
  EXPECT_EQ(D->Loc.Line, 7u) << D->getString(); // The launch.
}

TEST(CheckerNegative, UnmapOfUnmappedPointer) {
  auto M = compileMiniC(R"(__kernel void k(double *p, long n) {
  long i = __tid();
  if (i < n) p[i] = p[i] + 1.0;
}
int main() {
  double *p = (double*)malloc(64);
  launch k<<<1, 8>>>(p, 8);
  return 0;
}
)",
                        "unmap_unmapped");
  promoteAllocasToRegisters(*M);
  insertCommunicationManagement(*M);
  // Hoist the release above the unmap: the unmap then operates on a
  // mapping that no longer exists.
  Instruction *Unmap = nullptr;
  std::vector<Instruction *> Releases;
  for (Instruction *I : M->getFunction("main")->instructions())
    if (auto *CI = dyn_cast<CallInst>(I)) {
      if (CI->getCallee()->getName() == "cgcm_unmap" && !Unmap)
        Unmap = I;
      if (CI->getCallee()->getName() == "cgcm_release")
        Releases.push_back(I);
    }
  ASSERT_NE(Unmap, nullptr);
  ASSERT_FALSE(Releases.empty());
  BasicBlock *BB = Releases.front()->getParent();
  BB->insertBefore(Unmap, BB->remove(Releases.front()));

  DiagnosticEngine DE;
  checkCommunicationSoundness(*M, DE);
  EXPECT_TRUE(DE.hasDiagnostic(diag::UnmapUnmapped)) << renderAll(DE);
}

TEST(CheckerNegative, PointerDegreeThreeLiveIn) {
  auto M = compileMiniC(R"(double x[4];
double *p1[1];
double **p2[1];
__kernel void k(double ***ppp) { ppp[0][0][0] = 1.0; }
int main() {
  p1[0] = x;
  p2[0] = p1;
  launch k<<<1, 1>>>(p2);
  return 0;
}
)",
                        "degree3");
  promoteAllocasToRegisters(*M);
  DiagnosticEngine DE;
  checkCGCMRestrictions(*M, DE);
  const Diagnostic *D = findDiag(DE, diag::PointerDegree);
  ASSERT_NE(D, nullptr) << renderAll(DE);
  EXPECT_EQ(D->Severity, DiagSeverity::Error);
  EXPECT_TRUE(D->Loc.isValid());
  EXPECT_EQ(D->Loc.Line, 8u) << D->getString(); // Blames the launch site.
  EXPECT_EQ(D->FunctionName, "k");
}

TEST(CheckerNegative, PointerStoreLaunderedThroughInteger) {
  // The declared store type is i64, so the IR verifier cannot object;
  // only the use-based checker sees the pointer round-tripping through
  // the cast (paper section 4.1's subversive-cast problem).
  auto M = compileMiniC(R"(__kernel void k(long *p, long *q, long n) {
  long i = __tid();
  if (i < n)
    q[i] = (long)(p + i);
}
int main() {
  long *p = (long*)malloc(64);
  long *q = (long*)malloc(64);
  launch k<<<1, 8>>>(p, q, 8);
  return 0;
}
)",
                        "ptr_store");
  promoteAllocasToRegisters(*M);
  DiagnosticEngine DE;
  checkCGCMRestrictions(*M, DE);
  const Diagnostic *D = findDiag(DE, diag::PointerStore);
  ASSERT_NE(D, nullptr) << renderAll(DE);
  EXPECT_TRUE(D->Loc.isValid());
  EXPECT_EQ(D->Loc.Line, 4u) << D->getString(); // The store statement.
  EXPECT_EQ(D->FunctionName, "k");
}

TEST(CheckerNegative, RacyHandWrittenKernel) {
  // Every thread writes out[0]: a provable cross-thread race, reported
  // even in the conservative mode applied to hand-written kernels.
  auto M = compileMiniC(R"(__kernel void k(double *out, double *in, long n) {
  long i = __tid();
  out[0] = out[0] + in[i];
}
int main() {
  double *out = (double*)malloc(8);
  double *in = (double*)malloc(512 * 8);
  launch k<<<4, 128>>>(out, in, 512);
  return 0;
}
)",
                        "racy");
  promoteAllocasToRegisters(*M);
  Function *K = M->getFunction("k");
  ASSERT_NE(K, nullptr);
  DiagnosticEngine DE;
  checkKernelRaces(*M, *K, RaceCheckMode::Conservative, DE);
  const Diagnostic *D = findDiag(DE, diag::DoallRace);
  ASSERT_NE(D, nullptr) << renderAll(DE);
  EXPECT_EQ(D->Severity, DiagSeverity::Error);
  EXPECT_TRUE(D->Loc.isValid());
  EXPECT_EQ(D->Loc.Line, 3u) << D->getString(); // The racy store.
}

TEST(CheckerNegative, SingleThreadedLaunchCannotRace) {
  // Same racy kernel, but every launch is <<<1, 1>>>: one thread, no race.
  auto M = compileMiniC(R"(__kernel void k(double *out, double *in, long n) {
  long i = __tid();
  out[0] = out[0] + in[i];
}
int main() {
  double *out = (double*)malloc(8);
  double *in = (double*)malloc(8);
  launch k<<<1, 1>>>(out, in, 1);
  return 0;
}
)",
                        "single");
  promoteAllocasToRegisters(*M);
  Function *K = M->getFunction("k");
  ASSERT_NE(K, nullptr);
  DiagnosticEngine DE;
  checkKernelRaces(*M, *K, RaceCheckMode::Conservative, DE);
  EXPECT_TRUE(DE.empty()) << renderAll(DE);
}

TEST(CheckerNegative, WerrorPromotesWarningsToFailure) {
  DiagnosticEngine DE;
  DE.report(diag::DoallUnproven, DiagSeverity::Warning, {3, 1}, "unproven",
            "k");
  EXPECT_FALSE(DE.hasErrors());
  EXPECT_EQ(DE.getNumWarnings(), 1u);
  DE.setWarningsAsErrors(true);
  EXPECT_TRUE(DE.hasErrors());
}

//===----------------------------------------------------------------------===//
// Verifier launch hygiene (satellite of the checker work).
//===----------------------------------------------------------------------===//

TEST(VerifierLaunch, RejectsDuplicatePointerLiveIn) {
  Module M("dup");
  TypeContext &Ctx = M.getContext();
  Type *F64Ptr = Ctx.getPointerTo(Ctx.getDoubleTy());
  Function *K = M.getOrCreateFunction(
      "kern", Ctx.getFunctionTy(Ctx.getVoidTy(), {F64Ptr, F64Ptr}));
  K->setKernel(true);
  IRBuilder B(M);
  B.setInsertPoint(K->createBlock("entry"));
  B.createRet();

  Function *Main =
      M.getOrCreateFunction("main", Ctx.getFunctionTy(Ctx.getInt32Ty(), {}));
  B.setInsertPoint(Main->createBlock("entry"));
  AllocaInst *A = B.createAlloca(Ctx.getDoubleTy());
  B.createKernelLaunch(K, M.getInt64(1), M.getInt64(1), {A, A});
  B.createRet(M.getInt32(0));

  std::string Err;
  EXPECT_FALSE(verifyFunction(*Main, &Err));
  EXPECT_NE(Err.find("more than once"), std::string::npos) << Err;
}

TEST(VerifierLaunch, RejectsInconsistentPointerDegreeAlias) {
  Module M("alias");
  TypeContext &Ctx = M.getContext();
  Type *F64Ptr = Ctx.getPointerTo(Ctx.getDoubleTy());
  Type *F64PtrPtr = Ctx.getPointerTo(F64Ptr);
  Function *K = M.getOrCreateFunction(
      "kern", Ctx.getFunctionTy(Ctx.getVoidTy(), {F64Ptr, F64PtrPtr}));
  K->setKernel(true);
  IRBuilder B(M);
  B.setInsertPoint(K->createBlock("entry"));
  B.createRet();

  Function *Main =
      M.getOrCreateFunction("main", Ctx.getFunctionTy(Ctx.getInt32Ty(), {}));
  B.setInsertPoint(Main->createBlock("entry"));
  AllocaInst *A = B.createAlloca(Ctx.getDoubleTy());
  Value *Laundered = B.createCast(CastInst::Op::Bitcast, A, F64PtrPtr);
  B.createKernelLaunch(K, M.getInt64(1), M.getInt64(1), {A, Laundered});
  B.createRet(M.getInt32(0));

  std::string Err;
  EXPECT_FALSE(verifyFunction(*Main, &Err));
  EXPECT_NE(Err.find("inconsistent pointer degrees"), std::string::npos)
      << Err;
}

TEST(VerifierLaunch, AcceptsDistinctPointerLiveIns) {
  Module M("ok");
  TypeContext &Ctx = M.getContext();
  Type *F64Ptr = Ctx.getPointerTo(Ctx.getDoubleTy());
  Function *K = M.getOrCreateFunction(
      "kern", Ctx.getFunctionTy(Ctx.getVoidTy(), {F64Ptr, F64Ptr}));
  K->setKernel(true);
  IRBuilder B(M);
  B.setInsertPoint(K->createBlock("entry"));
  B.createRet();

  Function *Main =
      M.getOrCreateFunction("main", Ctx.getFunctionTy(Ctx.getInt32Ty(), {}));
  B.setInsertPoint(Main->createBlock("entry"));
  AllocaInst *A = B.createAlloca(Ctx.getDoubleTy());
  AllocaInst *C = B.createAlloca(Ctx.getDoubleTy());
  B.createKernelLaunch(K, M.getInt64(1), M.getInt64(1), {A, C});
  B.createRet(M.getInt32(0));

  std::string Err;
  EXPECT_TRUE(verifyFunction(*Main, &Err)) << Err;
}

//===----------------------------------------------------------------------===//
// Whole-suite properties: pipeline output is clean, and removing any
// single release breaks it in a way the checker catches.
//===----------------------------------------------------------------------===//

class CheckerWorkloads : public ::testing::TestWithParam<Workload> {};

TEST_P(CheckerWorkloads, PipelineOutputAnalyzesClean) {
  const Workload &W = GetParam();
  auto M = compileMiniC(W.Source, W.Name);
  PipelineResult R = runCGCMPipeline(*M);
  DiagnosticEngine DE;
  analyzePipelined(*M, R.Doall, DE);
  EXPECT_TRUE(DE.empty()) << W.Name << ":\n" << renderAll(DE);
}

TEST_P(CheckerWorkloads, DeletingAnyReleaseIsCaught) {
  // Fault injection: compile once, then for every release call the
  // pipeline inserted, delete exactly that call in a fresh copy of the
  // module (via the textual round trip) and require the soundness
  // checker to report the leak.
  const Workload &W = GetParam();
  auto M = compileMiniC(W.Source, W.Name);
  runCGCMPipeline(*M);
  std::string Text = M->getString();
  size_t NumReleases = releaseCalls(*M).size();
  ASSERT_GT(NumReleases, 0u) << W.Name;
  for (size_t Victim = 0; Victim != NumReleases; ++Victim) {
    auto Copy = parseIR(Text, W.Name);
    std::vector<Instruction *> Releases = releaseCalls(*Copy);
    ASSERT_EQ(Releases.size(), NumReleases);
    Releases[Victim]->getParent()->remove(Releases[Victim]);
    DiagnosticEngine DE;
    checkCommunicationSoundness(*Copy, DE);
    EXPECT_TRUE(DE.hasDiagnostic(diag::MissingRelease))
        << W.Name << ": deleting release #" << Victim
        << " went undetected\n"
        << renderAll(DE);
  }
}

INSTANTIATE_TEST_SUITE_P(AllPrograms, CheckerWorkloads,
                         ::testing::ValuesIn(getWorkloads()),
                         [](const ::testing::TestParamInfo<Workload> &Info) {
                           std::string N = Info.param.Name;
                           for (char &C : N)
                             if (C == '-')
                               C = '_';
                           return N;
                         });

} // namespace
