//===- tests/CommCostTests.cpp - Static communication-cost analysis ---------===//
//
// Part of the CGCM reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The static transfer-ledger predictor and lifecycle model checker
/// (docs/StaticAnalysis.md): symbolic-expression algebra, schedule
/// classification, exact parity between static predictions and the
/// dynamic TransferLedger on real workloads, static detection of every
/// fuzz-regression lifecycle bug, deterministic diagnostic ordering,
/// source-location threading through the management pass, and
/// pass-manager caching of the analysis.
///
//===----------------------------------------------------------------------===//

#include "analysis/commcost/CommCost.h"
#include "analysis/commcost/SymExpr.h"
#include "frontend/IRGen.h"
#include "ir/IRParser.h"
#include "ir/Module.h"
#include "pass/Analyses.h"
#include "pass/AnalysisManager.h"
#include "transform/Pipeline.h"
#include "workloads/Runner.h"
#include "workloads/Workloads.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <random>
#include <sstream>

using namespace cgcm;

namespace {

std::string readFile(const std::string &Path) {
  std::ifstream IS(Path);
  EXPECT_TRUE(IS.good()) << "cannot open " << Path;
  std::ostringstream SS;
  SS << IS.rdbuf();
  return SS.str();
}

std::string regressionDir() {
#ifdef CGCM_FUZZ_REGRESSION_DIR
  return CGCM_FUZZ_REGRESSION_DIR;
#else
  return "tests/fuzz";
#endif
}

/// Compiles \p Source through the full default pipeline and runs the
/// static analysis on the managed module.
CommCostReport analyzeSource(const std::string &Source,
                             const std::string &Name) {
  std::unique_ptr<Module> M = compileMiniC(Source, Name);
  PipelineOptions Opts;
  runCGCMPipeline(*M, Opts);
  return runCommCostAnalysis(*M);
}

//===----------------------------------------------------------------------===//
// SymExpr algebra
//===----------------------------------------------------------------------===//

TEST(SymExprTest, ConstantFolding) {
  SymExpr A = SymExpr::constant(6), B = SymExpr::constant(7);
  EXPECT_TRUE((A + B).isConst(13));
  EXPECT_TRUE((A * B).isConst(42));
  EXPECT_TRUE((A - A).isConst(0));
  EXPECT_TRUE(SymExpr().isConst(0));
}

TEST(SymExprTest, IdentitiesAndAbsorption) {
  SymExpr N = SymExpr::symbol("n");
  EXPECT_TRUE((N + SymExpr::constant(0)).equals(N));
  EXPECT_TRUE((N * SymExpr::constant(1)).equals(N));
  EXPECT_TRUE((N * SymExpr::constant(0)).isConst(0));
  // Unknown absorbs addition and multiplication (by nonzero).
  EXPECT_TRUE((N + SymExpr::unknown()).isUnknown());
  EXPECT_TRUE((SymExpr::unknown() * SymExpr::constant(8)).isUnknown());
  // ...but multiplication by a literal zero is still zero.
  EXPECT_TRUE((SymExpr::unknown() * SymExpr::constant(0)).isConst(0));
}

TEST(SymExprTest, CanonicalOperandOrder) {
  SymExpr N = SymExpr::symbol("n"), M = SymExpr::symbol("m");
  EXPECT_TRUE((N + M).equals(M + N));
  EXPECT_TRUE((N * M).equals(M * N));
  EXPECT_EQ((N + M).getString(), (M + N).getString());
}

TEST(SymExprTest, Rendering) {
  SymExpr N = SymExpr::symbol("n");
  EXPECT_EQ((N * SymExpr::constant(8)).getString(), "8*n");
  // Operands are sorted by rendered text, so constants print first.
  EXPECT_EQ((N + SymExpr::constant(2)).getString(), "2 + n");
  EXPECT_EQ(((N + SymExpr::constant(1)) * SymExpr::constant(8)).getString(),
            "(1 + n)*8");
  EXPECT_EQ(SymExpr::unknown().getString(), "?");
}

//===----------------------------------------------------------------------===//
// Static-vs-dynamic parity on workloads
//===----------------------------------------------------------------------===//

/// Joins the static prediction against the dynamic ledger and requires
/// exact equality of every counter at every site (the workload suite has
/// statically-known trip counts throughout).
void expectExactParity(const Workload &W) {
  RunnerOptions RO;
  RO.PredictStaticCost = true;
  WorkloadRun R = runWorkload(W, BenchConfig::CGCMOptimized, RO);
  const CommCostReport &P = R.StaticCost;

  EXPECT_TRUE(P.Sound) << W.Name;
  EXPECT_TRUE(P.Exact) << W.Name;
  EXPECT_TRUE(P.Diagnostics.empty())
      << W.Name << ": " << P.Diagnostics.front().getString();

  EXPECT_EQ(P.Sites.size(), R.Ledger.entries().size()) << W.Name;
  for (const auto &[Site, E] : R.Ledger.entries()) {
    const SitePrediction *SP = P.findSite(Site);
    ASSERT_NE(SP, nullptr) << W.Name << " site " << Site;
    EXPECT_TRUE(SP->Exact) << W.Name << " site " << Site;
    EXPECT_TRUE(SP->Units.isConst(int64_t(E.Units))) << W.Name << " " << Site;
    EXPECT_TRUE(SP->BytesHtoD.isConst(int64_t(E.BytesHtoD)))
        << W.Name << " " << Site << ": " << SP->BytesHtoD.getString()
        << " vs " << E.BytesHtoD;
    EXPECT_TRUE(SP->BytesDtoH.isConst(int64_t(E.BytesDtoH)))
        << W.Name << " " << Site << ": " << SP->BytesDtoH.getString()
        << " vs " << E.BytesDtoH;
    EXPECT_TRUE(SP->TransfersHtoD.isConst(int64_t(E.TransfersHtoD)))
        << W.Name << " " << Site;
    EXPECT_TRUE(SP->TransfersDtoH.isConst(int64_t(E.TransfersDtoH)))
        << W.Name << " " << Site;
    EXPECT_TRUE(SP->EpochSuppressed.isConst(int64_t(E.EpochSuppressed)))
        << W.Name << " " << Site;
    EXPECT_TRUE(SP->ReuseSuppressed.isConst(int64_t(E.ReuseSuppressed)))
        << W.Name << " " << Site;
    EXPECT_TRUE(SP->MapCalls.isConst(int64_t(E.MapCalls)))
        << W.Name << " " << Site;
    EXPECT_TRUE(SP->UnmapCalls.isConst(int64_t(E.UnmapCalls)))
        << W.Name << " " << Site;
    EXPECT_TRUE(SP->ReleaseCalls.isConst(int64_t(E.ReleaseCalls)))
        << W.Name << " " << Site;
  }

  EXPECT_TRUE(P.KernelLaunches.isConst(int64_t(R.Stats.KernelLaunches)))
      << W.Name << ": predicted " << P.KernelLaunches.getString()
      << ", actual " << R.Stats.KernelLaunches;
}

TEST(CommCostParityTest, GemmExact) {
  expectExactParity(*findWorkload("gemm"));
}

TEST(CommCostParityTest, HoistedCyclicWorkloadExact) {
  // jacobi-2d-imper runs its kernels inside a time loop: map hoisting
  // plus per-iteration epoch traffic, the hardest accounting shape.
  expectExactParity(*findWorkload("jacobi-2d-imper"));
}

TEST(CommCostParityTest, FreeUsingWorkloadExact) {
  // nw is the one workload that frees kernel-fed buffers; its frees sit
  // after the last launch, so the hazard checker must stay silent.
  expectExactParity(*findWorkload("nw"));
}

TEST(CommCostParityTest, ScheduleClassesAssigned) {
  RunnerOptions RO;
  RO.PredictStaticCost = true;
  WorkloadRun R =
      runWorkload(*findWorkload("jacobi-2d-imper"), BenchConfig::CGCMOptimized,
                  RO);
  const CommCostReport &P = R.StaticCost;
  ASSERT_FALSE(P.CallSites.empty());
  bool SawHoisted = false, SawCyclic = false;
  for (const CallSiteClass &C : P.CallSites) {
    SawHoisted |= C.Class == SchedClass::Hoisted;
    SawCyclic |= C.Class == SchedClass::Cyclic;
    if (C.Class == SchedClass::Cyclic) {
      EXPECT_GE(C.LoopDepth, 1u);
    }
  }
  // The time loop guarantees both classes exist: maps hoisted to the
  // preheader, launches cyclic inside.
  EXPECT_TRUE(SawHoisted);
  EXPECT_TRUE(SawCyclic);
}

//===----------------------------------------------------------------------===//
// Lifecycle verification: the fuzz corpus must be flagged statically
//===----------------------------------------------------------------------===//

TEST(CommCostLifecycleTest, FreeWhileMappedFlagged) {
  CommCostReport R = analyzeSource(
      readFile(regressionDir() + "/free_while_mapped.minic"), "fwm");
  EXPECT_TRUE(R.hasDiagnostic(diag::StaticFreeBetweenLaunches));
}

TEST(CommCostLifecycleTest, ReallocWhileMappedFlagged) {
  CommCostReport R = analyzeSource(
      readFile(regressionDir() + "/realloc_while_mapped.minic"), "rwm");
  EXPECT_TRUE(R.hasDiagnostic(diag::StaticReallocBetweenLaunches));
}

TEST(CommCostLifecycleTest, ArraySlotSwapFlagged) {
  CommCostReport R = analyzeSource(
      readFile(regressionDir() + "/array_slot_swap.minic"), "ass");
  EXPECT_TRUE(R.hasDiagnostic(diag::StaticStaleSnapshot));
}

TEST(CommCostLifecycleTest, ArrayRemapStaleFlagged) {
  CommCostReport R = analyzeSource(
      readFile(regressionDir() + "/array_remap_stale.minic"), "ars");
  EXPECT_TRUE(R.hasDiagnostic(diag::StaticStaleSnapshot));
}

TEST(CommCostLifecycleTest, UseAfterFreeIsAnError) {
  // The second launch region re-maps a buffer that was freed at
  // reference count zero — the runtime aborts on the unknown pointer,
  // and the checker must prove it.
  const char *Source = R"(
    __kernel void k(double *a, long n) {
      long i = __tid();
      if (i < n) a[i] = a[i] + 1.0;
    }
    int main() {
      long i;
      double *p = (double*)malloc(8 * sizeof(double));
      for (i = 0; i < 8; i++) p[i] = 1.0;
      launch k<<<1, 32>>>(p, 8);
      free((char*)p);
      launch k<<<1, 32>>>(p, 8);
      print_f64(p[0]);
      return 0;
    }
  )";
  CommCostReport R = analyzeSource(Source, "uaf");
  EXPECT_TRUE(R.hasDiagnostic(diag::StaticMapAfterFree));
  bool SawError = false;
  for (const Diagnostic &D : R.Diagnostics)
    SawError |= D.Severity == DiagSeverity::Error;
  EXPECT_TRUE(SawError);
}

TEST(CommCostLifecycleTest, CleanProgramStaysClean) {
  const char *Source = R"(
    __kernel void k(double *a, long n) {
      long i = __tid();
      if (i < n) a[i] = a[i] * 2.0;
    }
    int main() {
      long i;
      double *p = (double*)malloc(16 * sizeof(double));
      for (i = 0; i < 16; i++) p[i] = (double)i;
      launch k<<<1, 32>>>(p, 16);
      print_f64(p[3]);
      free((char*)p);
      return 0;
    }
  )";
  CommCostReport R = analyzeSource(Source, "clean");
  EXPECT_TRUE(R.Sound);
  EXPECT_TRUE(R.Diagnostics.empty())
      << R.Diagnostics.front().getString();
}

//===----------------------------------------------------------------------===//
// Deterministic diagnostics (satellite: stable --analyze output)
//===----------------------------------------------------------------------===//

Diagnostic makeDiag(const char *ID, DiagSeverity Sev, unsigned Line,
                    unsigned Col, const char *Msg) {
  Diagnostic D;
  D.ID = ID;
  D.Severity = Sev;
  D.Loc = SourceLoc{Line, Col};
  D.Message = Msg;
  D.FunctionName = "main";
  return D;
}

TEST(CommCostDeterminismTest, SortIsTotalAndStableAcrossShuffles) {
  std::vector<Diagnostic> Base = {
      makeDiag("b-check", DiagSeverity::Warning, 10, 4, "w1"),
      makeDiag("a-check", DiagSeverity::Warning, 10, 4, "w2"),
      makeDiag("a-check", DiagSeverity::Error, 3, 9, "e1"),
      makeDiag("c-check", DiagSeverity::Warning, 3, 1, "w3"),
      makeDiag("a-check", DiagSeverity::Warning, 10, 2, "w4"),
  };
  std::vector<Diagnostic> Sorted = Base;
  sortDiagnostics(Sorted);

  std::mt19937 Rng(1234);
  for (int Trial = 0; Trial != 20; ++Trial) {
    std::vector<Diagnostic> Shuffled = Base;
    std::shuffle(Shuffled.begin(), Shuffled.end(), Rng);
    sortDiagnostics(Shuffled);
    ASSERT_EQ(Shuffled.size(), Sorted.size());
    for (size_t I = 0; I != Sorted.size(); ++I)
      EXPECT_EQ(Shuffled[I].getString(), Sorted[I].getString()) << I;
  }
  // Source order dominates: line 3 entries first, then column order.
  EXPECT_EQ(Sorted.front().Loc.Line, 3u);
  EXPECT_EQ(Sorted.front().Loc.Col, 1u);
  EXPECT_EQ(Sorted.back().Loc.Line, 10u);
  EXPECT_EQ(Sorted.back().Loc.Col, 4u);
}

TEST(CommCostDeterminismTest, PermutedFixpointPipelinesAgree) {
  // The optimization fixpoint is confluent: permuting its member order
  // must leave the managed module — and therefore the analysis JSON,
  // diagnostics included — bit-identical.
  std::string Source =
      readFile(regressionDir() + "/free_while_mapped.minic");
  auto Analyze = [&](const std::string &Pipeline) {
    std::unique_ptr<Module> M = compileMiniC(Source, "det");
    runPassPipeline(*M, Pipeline, PipelineRunOptions());
    CommCostReport R = runCommCostAnalysis(*M);
    std::ostringstream SS;
    writeStaticCostJson(SS, R, "det");
    return SS.str();
  };
  std::string A =
      Analyze("mem2reg,doall,comm,fixpoint(glue,alloca-promote,map-promote)");
  std::string B =
      Analyze("mem2reg,doall,comm,fixpoint(map-promote,glue,alloca-promote)");
  EXPECT_EQ(A, B);
}

//===----------------------------------------------------------------------===//
// Source-location threading (satellite: alloca ledger sites)
//===----------------------------------------------------------------------===//

TEST(CommCostLocTest, DeclaredAllocasCarryTheAllocaLoc) {
  const char *Source = R"(
    __kernel void k(double *a, long n) {
      long i = __tid();
      if (i < n) a[i] = a[i] + 1.0;
    }
    int main() {
      double buf[4];
      long i;
      for (i = 0; i < 4; i++) buf[i] = 1.0;
      launch k<<<1, 32>>>(buf, 4);
      print_f64(buf[0]);
      return 0;
    }
  )";
  std::unique_ptr<Module> M = compileMiniC(Source, "loc");
  PipelineOptions Opts;
  runCGCMPipeline(*M, Opts);

  bool SawDeclare = false;
  for (const auto &F : M->functions()) {
    if (F->isDeclaration())
      continue;
    for (const Instruction *I : F->instructions()) {
      const auto *CI = dyn_cast<CallInst>(I);
      if (!CI || CI->getCallee()->getName() != "cgcm_declare_alloca")
        continue;
      SawDeclare = true;
      EXPECT_TRUE(CI->getLoc().isValid())
          << "declare_alloca lost its source location";
    }
  }
  EXPECT_TRUE(SawDeclare);

  // And the ledger keys stack units by position, not "<unknown>".
  CommCostReport R = runCommCostAnalysis(*M);
  bool SawLocatedAlloca = false;
  for (const SitePrediction &P : R.Sites) {
    EXPECT_EQ(P.Site.find("alloca@<unknown>"), std::string::npos) << P.Site;
    if (P.Site.rfind("alloca@", 0) == 0)
      SawLocatedAlloca = true;
  }
  EXPECT_TRUE(SawLocatedAlloca);
}

TEST(CommCostLocTest, ManagedModuleRoundTripsThroughParser) {
  const char *Source = R"(
    __kernel void k(double *a, long n) {
      long i = __tid();
      if (i < n) a[i] = a[i] * 3.0;
    }
    int main() {
      double buf[4];
      long i;
      for (i = 0; i < 4; i++) buf[i] = (double)i;
      launch k<<<1, 32>>>(buf, 4);
      print_f64(buf[2]);
      return 0;
    }
  )";
  std::unique_ptr<Module> M = compileMiniC(Source, "rt");
  PipelineOptions Opts;
  runCGCMPipeline(*M, Opts);
  std::string Printed = M->getString();
  ASSERT_NE(Printed.find("!loc"), std::string::npos);

  std::unique_ptr<Module> Reparsed = parseIR(Printed, "rt.ir");
  ASSERT_NE(Reparsed, nullptr);
  // The parser renumbers SSA values, so the reprint is not byte-identical;
  // what must survive is every !loc attachment.
  std::string Reprinted = Reparsed->getString();
  auto countLocs = [](const std::string &S) {
    size_t N = 0;
    for (size_t P = S.find("!loc"); P != std::string::npos;
         P = S.find("!loc", P + 4))
      ++N;
    return N;
  };
  EXPECT_EQ(countLocs(Reprinted), countLocs(Printed));
  // And the analysis sees identical sites either way.
  CommCostReport A = runCommCostAnalysis(*M);
  CommCostReport B = runCommCostAnalysis(*Reparsed);
  std::ostringstream SA, SB;
  writeStaticCostJson(SA, A, "rt");
  writeStaticCostJson(SB, B, "rt");
  EXPECT_EQ(SA.str(), SB.str());
}

//===----------------------------------------------------------------------===//
// Pass-manager integration
//===----------------------------------------------------------------------===//

TEST(CommCostAnalysisManagerTest, ResultIsCachedAndInvalidated) {
  const char *Source = R"(
    __kernel void k(double *a, long n) {
      long i = __tid();
      if (i < n) a[i] = a[i] + 1.0;
    }
    int main() {
      long i;
      double *p = (double*)malloc(8 * sizeof(double));
      for (i = 0; i < 8; i++) p[i] = 1.0;
      launch k<<<1, 32>>>(p, 8);
      print_f64(p[0]);
      return 0;
    }
  )";
  std::unique_ptr<Module> M = compileMiniC(Source, "cache");
  PipelineOptions Opts;
  runCGCMPipeline(*M, Opts);

  ModuleAnalysisManager AM;
  CommCostReport &First = AM.getResult<CommCostAnalysis>(*M);
  CommCostReport &Second = AM.getResult<CommCostAnalysis>(*M);
  EXPECT_EQ(&First, &Second);
  EXPECT_EQ(AM.getConstructionCount("commcost"), 1u);
  EXPECT_EQ(AM.getHitCount("commcost"), 1u);
  EXPECT_TRUE(First.Sound);
  EXPECT_FALSE(First.Sites.empty());

  AM.invalidateResult<CommCostAnalysis>();
  EXPECT_FALSE(AM.isCached<CommCostAnalysis>());
  AM.getResult<CommCostAnalysis>(*M);
  EXPECT_EQ(AM.getConstructionCount("commcost"), 2u);
}

} // namespace
