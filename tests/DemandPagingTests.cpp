//===- tests/DemandPagingTests.cpp - DyManD-style extension tests --------------===//
//
// Part of the CGCM reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests for the demand-paging extension (docs/Extensions.md): kernels
/// launched with raw host pointers fault their allocation units onto the
/// device; CPU touches fault them back. No compiler pass runs at all, so
/// this mode also handles what CGCM's static insertion cannot — three or
/// more levels of indirection — modeling the paper's follow-on system
/// (DyManD).
///
//===----------------------------------------------------------------------===//

#include "exec/Machine.h"
#include "frontend/IRGen.h"
#include "transform/Mem2Reg.h"
#include "transform/Pipeline.h"

#include <gtest/gtest.h>

using namespace cgcm;

namespace {

struct DemandRun {
  std::string Output;
  ExecStats Stats;
};

/// Runs \p Src with kernels only extracted (or manual), no management,
/// under the demand pager.
DemandRun runDemand(const std::string &Src, bool Parallelize = true) {
  auto M = compileMiniC(Src, "demand");
  PipelineOptions Opts;
  Opts.Parallelize = Parallelize;
  Opts.Manage = false;
  Opts.Optimize = false;
  runCGCMPipeline(*M, Opts);
  Machine Mach;
  Mach.setLaunchPolicy(LaunchPolicy::DemandManaged);
  Mach.loadModule(*M);
  Mach.run();
  return {Mach.getOutput(), Mach.getStats()};
}

std::string runSeq(const std::string &Src) {
  auto M = compileMiniC(Src, "seq");
  Machine Mach;
  Mach.setLaunchPolicy(LaunchPolicy::CpuEmulation);
  Mach.loadModule(*M);
  Mach.run();
  return Mach.getOutput();
}

const char *HeapProgram = R"(
  int main() {
    int n = 96;
    double *a = (double*)malloc(n * sizeof(double));
    double *b = (double*)malloc(n * sizeof(double));
    int i;
    for (i = 0; i < n; i++) {
      a[i] = i * 0.5;
      b[i] = 0.0;
    }
    int t;
    for (t = 0; t < 12; t++) {
      for (i = 0; i < n; i++)
        b[i] = a[i] * 1.1 + b[i] * 0.5;
    }
    double s = 0.0;
    for (i = 0; i < n; i++) s += b[i];
    print_f64(s);
    free((char*)a);
    free((char*)b);
    return 0;
  }
)";

TEST(DemandPaging, MatchesSequentialOnHeapArrays) {
  DemandRun R = runDemand(HeapProgram);
  EXPECT_EQ(R.Output, runSeq(HeapProgram));
  EXPECT_GT(R.Stats.DemandFaults, 0u);
}

TEST(DemandPaging, DataStaysResidentAcrossLaunches) {
  // 13 kernels touch the arrays, but the CPU only reads the result at
  // the end: each unit faults in once and back once — acyclic
  // communication without any compiler pass.
  DemandRun R = runDemand(HeapProgram);
  EXPECT_GE(R.Stats.KernelLaunches, 13u);
  EXPECT_LE(R.Stats.TransfersHtoD, 4u);
  EXPECT_LE(R.Stats.TransfersDtoH, 4u);
}

TEST(DemandPaging, GlobalsFaultInAndBack) {
  const char *Src = R"(
    double g[64];
    int main() {
      int i; int t;
      for (i = 0; i < 64; i++) g[i] = i;
      for (t = 0; t < 6; t++) {
        for (i = 0; i < 64; i++) g[i] = g[i] * 0.9 + 1.0;
      }
      double s = 0.0;
      for (i = 0; i < 64; i++) s += g[i];
      print_f64(s);
      return 0;
    }
  )";
  DemandRun R = runDemand(Src);
  EXPECT_EQ(R.Output, runSeq(Src));
  EXPECT_LE(R.Stats.TransfersHtoD, 3u);
}

TEST(DemandPaging, HandlesTripleIndirection) {
  // CGCM's management pass rejects three levels of indirection; demand
  // paging translates at each access, so depth does not matter.
  const char *Src = R"(
    double x0[8];
    double x1[8];
    double *mid0[2];
    double *mid1[2];
    double **top[2];
    __kernel void deep(double ***t, long n) {
      long i = __tid();
      if (i < n)
        t[i % 2][i % 2][i % 8] = i * 2.0 + t[0][0][0];
    }
    int main() {
      int i;
      for (i = 0; i < 8; i++) {
        x0[i] = 1.0;
        x1[i] = 2.0;
      }
      mid0[0] = x0;
      mid0[1] = x1;
      mid1[0] = x1;
      mid1[1] = x0;
      top[0] = mid0;
      top[1] = mid1;
      launch deep<<<1, 8>>>(top, 8);
      double s = 0.0;
      for (i = 0; i < 8; i++) s += x0[i] + x1[i];
      print_f64(s);
      return 0;
    }
  )";
  DemandRun R = runDemand(Src, /*Parallelize=*/false);
  EXPECT_EQ(R.Output, runSeq(Src));
  // Pointer-table units and leaf arrays all faulted in.
  EXPECT_GE(R.Stats.DemandFaults, 4u);
}

TEST(DemandPaging, EscapingStackBuffersAreTracked) {
  const char *Src = R"(
    void fill(double *p, int n) {
      int i;
      for (i = 0; i < n; i++)
        p[i] = i * 0.25;
    }
    int main() {
      double buf[32];
      fill(buf, 32);
      double s = 0.0;
      int i;
      for (i = 0; i < 32; i++) s += buf[i];
      print_f64(s);
      return 0;
    }
  )";
  DemandRun R = runDemand(Src);
  EXPECT_EQ(R.Output, runSeq(Src));
}

TEST(DemandPaging, FreeOfResidentUnitIsSafe) {
  // a is freed while still device-resident (never touched again by the
  // CPU): the heap wrapper releases the device copy; later allocations
  // reusing the address must not confuse the pager.
  const char *Src = R"(
    int main() {
      double *a = (double*)malloc(64 * sizeof(double));
      int i;
      for (i = 0; i < 64; i++) a[i] = i;
      int t;
      for (t = 0; t < 3; t++) {
        for (i = 0; i < 64; i++) a[i] = a[i] + 1.0;
      }
      free((char*)a);
      double *b = (double*)malloc(64 * sizeof(double));
      for (i = 0; i < 64; i++) b[i] = 5.0;
      double s = 0.0;
      for (i = 0; i < 64; i++) s += b[i];
      print_f64(s);
      free((char*)b);
      return 0;
    }
  )";
  DemandRun R = runDemand(Src);
  EXPECT_EQ(R.Output, "320\n");
}

TEST(DemandPaging, ComparableToOptimizedCGCMOnFriendlyCode) {
  // On code CGCM promotes fully, demand paging should land in the same
  // performance ballpark (it pays fault latency instead of runtime
  // calls).
  auto CGCMRun = [&] {
    auto M = compileMiniC(HeapProgram, "cgcm");
    runCGCMPipeline(*M);
    Machine Mach;
    Mach.setLaunchPolicy(LaunchPolicy::Managed);
    Mach.loadModule(*M);
    Mach.run();
    return Mach.getStats().totalCycles();
  }();
  DemandRun R = runDemand(HeapProgram);
  EXPECT_LT(R.Stats.totalCycles(), CGCMRun * 2.0);
  EXPECT_GT(R.Stats.totalCycles(), CGCMRun * 0.5);
}

} // namespace
