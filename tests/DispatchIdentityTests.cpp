//===- tests/DispatchIdentityTests.cpp - Table vs Switch dispatch identity ----===//
//
// Part of the CGCM reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The interpreter's precomputed handler-table dispatch (the default)
/// and the original nested-switch tree walk are two implementations of
/// one semantics. This suite runs every workload of the evaluation
/// suite under both modes — synchronously and under the asynchronous
/// transfer engine — and requires bit-identical observables: printed
/// output, modeled wall cycles, and the full per-site transfer ledger.
/// Any divergence is a decode or handler bug, never an "expected"
/// difference: the dispatch strategy is pure host-time engineering.
///
//===----------------------------------------------------------------------===//

#include "workloads/Runner.h"
#include "workloads/Workloads.h"

#include <gtest/gtest.h>

using namespace cgcm;

namespace {

void expectLedgersIdentical(const TransferLedger &T, const TransferLedger &S) {
  const auto &TE = T.entries();
  const auto &SE = S.entries();
  ASSERT_EQ(TE.size(), SE.size());
  auto TI = TE.begin();
  for (auto SI = SE.begin(); SI != SE.end(); ++TI, ++SI) {
    EXPECT_EQ(TI->first, SI->first);
    const LedgerEntry &A = TI->second, &B = SI->second;
    EXPECT_EQ(A.Units, B.Units) << A.Site;
    EXPECT_EQ(A.BytesHtoD, B.BytesHtoD) << A.Site;
    EXPECT_EQ(A.BytesDtoH, B.BytesDtoH) << A.Site;
    EXPECT_EQ(A.TransfersHtoD, B.TransfersHtoD) << A.Site;
    EXPECT_EQ(A.TransfersDtoH, B.TransfersDtoH) << A.Site;
    EXPECT_EQ(A.BytesP2P, B.BytesP2P) << A.Site;
    EXPECT_EQ(A.EpochSuppressed, B.EpochSuppressed) << A.Site;
    EXPECT_EQ(A.ReuseSuppressed, B.ReuseSuppressed) << A.Site;
    EXPECT_EQ(A.Coalesced, B.Coalesced) << A.Site;
    EXPECT_EQ(A.MapCalls, B.MapCalls) << A.Site;
    EXPECT_EQ(A.UnmapCalls, B.UnmapCalls) << A.Site;
    EXPECT_EQ(A.ReleaseCalls, B.ReleaseCalls) << A.Site;
  }
}

/// Runs \p W under CGCMOptimized with both dispatch modes and the given
/// stream count, requiring identical observables.
void checkIdentity(const Workload &W, unsigned AsyncStreams) {
  RunnerOptions Table;
  Table.Dispatch = DispatchMode::Table;
  Table.AsyncStreams = AsyncStreams;
  RunnerOptions Switch = Table;
  Switch.Dispatch = DispatchMode::Switch;

  WorkloadRun RT = runWorkload(W, BenchConfig::CGCMOptimized, Table);
  WorkloadRun RS = runWorkload(W, BenchConfig::CGCMOptimized, Switch);

  EXPECT_EQ(RT.Output, RS.Output);
  EXPECT_EQ(RT.TotalCycles, RS.TotalCycles); // Bit-identical, not "close".
  EXPECT_EQ(RT.StaticKernels, RS.StaticKernels);
  expectLedgersIdentical(RT.Ledger, RS.Ledger);
}

class DispatchIdentity : public ::testing::TestWithParam<std::string> {};

TEST_P(DispatchIdentity, SyncObservablesBitIdentical) {
  const Workload *W = findWorkload(GetParam());
  ASSERT_NE(W, nullptr);
  checkIdentity(*W, /*AsyncStreams=*/0);
}

TEST_P(DispatchIdentity, AsyncObservablesBitIdentical) {
  const Workload *W = findWorkload(GetParam());
  ASSERT_NE(W, nullptr);
  checkIdentity(*W, /*AsyncStreams=*/4);
}

std::vector<std::string> allWorkloadNames() {
  std::vector<std::string> Names;
  for (const Workload &W : getWorkloads())
    Names.push_back(W.Name);
  return Names;
}

INSTANTIATE_TEST_SUITE_P(
    AllWorkloads, DispatchIdentity, ::testing::ValuesIn(allWorkloadNames()),
    [](const ::testing::TestParamInfo<std::string> &Info) {
      std::string Name = Info.param;
      for (char &C : Name)
        if (C == '-' || C == '.')
          C = '_';
      return Name;
    });

} // namespace
