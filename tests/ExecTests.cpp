//===- tests/ExecTests.cpp - Interpreter and machine tests ------------------===//
//
// Part of the CGCM reproduction project.
//
//===----------------------------------------------------------------------===//

#include "exec/Machine.h"
#include "frontend/IRGen.h"

#include <gtest/gtest.h>

using namespace cgcm;

namespace {

/// Compiles and runs MiniC source, returning main's exit value.
int64_t runProgram(const std::string &Src, std::string *Output = nullptr) {
  auto M = compileMiniC(Src, "test");
  Machine Mach;
  Mach.loadModule(*M);
  int64_t R = Mach.run();
  if (Output)
    *Output = Mach.getOutput();
  return R;
}

} // namespace

TEST(Interp, ArithmeticAndControlFlow) {
  EXPECT_EQ(runProgram("int main() { return 2 + 3 * 4; }"), 14);
  EXPECT_EQ(runProgram("int main() { int x = 10; if (x > 5) return 1; "
                       "return 0; }"),
            1);
  EXPECT_EQ(runProgram(R"(
    int main() {
      int s = 0;
      int i;
      for (i = 1; i <= 10; i++) s += i;
      return s;
    }
  )"),
            55);
  EXPECT_EQ(runProgram(R"(
    int main() {
      int n = 0;
      while (n < 7) { n++; if (n == 5) break; }
      return n;
    }
  )"),
            5);
}

TEST(Interp, IntegerWidthSemantics) {
  EXPECT_EQ(runProgram("int main() { char c = 200; return c < 0 ? 1 : 0; }"),
            1); // i8 sign wraps.
  EXPECT_EQ(runProgram("int main() { long big = 1; int i; "
                       "for (i = 0; i < 40; i++) big = big * 2; "
                       "return big > 1000000000 ? 1 : 0; }"),
            1);
  EXPECT_EQ(runProgram("int main() { return 7 % 3 + (-7) % 3; }"), 0);
  EXPECT_EQ(runProgram("int main() { return (1 << 10) >> 8; }"), 4);
}

TEST(Interp, FloatingPoint) {
  EXPECT_EQ(runProgram("int main() { double d = 0.5; return (int)(d * 8.0); }"),
            4);
  EXPECT_EQ(runProgram(R"(
    int main() {
      float f = 0.1;
      double d = f;
      return d > 0.09 && d < 0.11 ? 1 : 0;
    }
  )"),
            1);
  EXPECT_EQ(runProgram("int main() { return (int)sqrt(81.0); }"), 9);
  EXPECT_EQ(runProgram("int main() { return (int)pow(2.0, 10.0); }"), 1024);
}

TEST(Interp, GlobalsAndArrays) {
  EXPECT_EQ(runProgram(R"(
    int table[5] = {10, 20, 30, 40, 50};
    int main() { return table[0] + table[4]; }
  )"),
            60);
  EXPECT_EQ(runProgram(R"(
    double A[3][3];
    int main() {
      int i; int j;
      for (i = 0; i < 3; i++)
        for (j = 0; j < 3; j++)
          A[i][j] = i * 3 + j;
      return (int)(A[2][2] + A[1][0]);
    }
  )"),
            11);
}

TEST(Interp, HeapAndPointers) {
  EXPECT_EQ(runProgram(R"(
    int main() {
      double *p = (double*)malloc(8 * sizeof(double));
      int i;
      for (i = 0; i < 8; i++) p[i] = i * 1.5;
      double s = 0.0;
      for (i = 0; i < 8; i++) s += p[i];
      free((char*)p);
      return (int)s;
    }
  )"),
            42);
  EXPECT_EQ(runProgram(R"(
    int main() {
      int x = 5;
      int *p = &x;
      *p = 9;
      return x;
    }
  )"),
            9);
  EXPECT_EQ(runProgram(R"(
    int main() {
      long *a = (long*)calloc(4, sizeof(long));
      long s = a[0] + a[1] + a[2] + a[3];
      a = (long*)realloc((char*)a, 8 * sizeof(long));
      a[7] = 11;
      s += a[7];
      free((char*)a);
      return (int)s;
    }
  )"),
            11);
}

TEST(Interp, FunctionsAndRecursion) {
  EXPECT_EQ(runProgram(R"(
    int fib(int n) { return n < 2 ? n : fib(n - 1) + fib(n - 2); }
    int main() { return fib(10); }
  )"),
            55);
  EXPECT_EQ(runProgram(R"(
    void fill(int *a, int n, int v) {
      int i;
      for (i = 0; i < n; i++) a[i] = v;
    }
    int sum(int *a, int n) {
      int s = 0;
      int i;
      for (i = 0; i < n; i++) s += a[i];
      return s;
    }
    int main() {
      int buf[10];
      fill(buf, 10, 7);
      return sum(buf, 10);
    }
  )"),
            70);
}

TEST(Interp, PrintBuiltins) {
  std::string Out;
  runProgram(R"(
    int main() {
      print_i64(42);
      print_f64(2.5);
      print_str("hello");
      return 0;
    }
  )",
             &Out);
  EXPECT_EQ(Out, "42\n2.5\nhello\n");
}

TEST(Interp, StringGlobals) {
  std::string Out;
  runProgram(R"(
    char *words[2] = {"foo", "barbaz"};
    int main() {
      print_str(words[0]);
      print_str(words[1]);
      return 0;
    }
  )",
             &Out);
  EXPECT_EQ(Out, "foo\nbarbaz\n");
}

TEST(Interp, StatsCountCpuWork) {
  auto M = compileMiniC("int main() { int s = 0; int i; "
                        "for (i = 0; i < 100; i++) s += i; return s; }",
                        "stats");
  Machine Mach;
  Mach.loadModule(*M);
  Mach.run();
  EXPECT_GT(Mach.getStats().CpuOps, 400u);
  EXPECT_EQ(Mach.getStats().KernelLaunches, 0u);
  EXPECT_EQ(Mach.getStats().GpuOps, 0u);
}

TEST(Interp, UnmanagedKernelLaunchTrapsOnHostAccess) {
  auto M = compileMiniC(R"(
    double data[16];
    __kernel void k(double *a) {
      long i = __tid();
      a[i] = 1.0;
    }
    int main() {
      launch k<<<1, 16>>>(data);
      return 0;
    }
  )",
                        "trap");
  Machine Mach;
  Mach.loadModule(*M);
  EXPECT_DEATH(Mach.run(), "GPU function dereferenced a CPU pointer");
}

TEST(Interp, CpuDerefOfDevicePointerTraps) {
  auto M = compileMiniC(R"(
    int main() {
      double *p = (double*)malloc(8);
      *p = 1.0;
      return 0;
    }
  )",
                        "devderef");
  Machine Mach;
  Mach.loadModule(*M);
  // Manually map and then dereference the device pointer on the CPU.
  Mach.run(); // Normal run is fine.
  uint64_t Host = Mach.getHostMemory().allocate(32);
  Mach.getRuntime().notifyHeapAlloc(Host, 32);
  uint64_t Dev = Mach.getRuntime().map(Host);
  EXPECT_TRUE(isDeviceAddress(Dev));
}

TEST(Interp, OpLimitGuardsRunaways) {
  auto M = compileMiniC("int main() { while (1) { } return 0; }", "spin");
  Machine Mach;
  Mach.loadModule(*M);
  Mach.setOpLimit(10000);
  EXPECT_DEATH(Mach.run(), "op limit");
}

TEST(Interp, DivisionByZeroTraps) {
  auto M = compileMiniC("int zero() { return 0; } "
                        "int main() { return 5 / zero(); }",
                        "div0");
  Machine Mach;
  Mach.loadModule(*M);
  EXPECT_DEATH(Mach.run(), "division by zero");
}
