//===- tests/FrontendTests.cpp - Lexer/Parser/IRGen unit tests -------------===//
//
// Part of the CGCM reproduction project.
//
//===----------------------------------------------------------------------===//

#include "frontend/IRGen.h"
#include "frontend/Lexer.h"
#include "frontend/Parser.h"
#include "ir/Verifier.h"

#include <gtest/gtest.h>

using namespace cgcm;

TEST(Lexer, TokenizesOperatorsAndKeywords) {
  auto Tokens = lexSource("int x = 1 + 2; // comment\n x <<< >>> &&");
  std::vector<Token::Kind> Kinds;
  for (const Token &T : Tokens)
    Kinds.push_back(T.K);
  EXPECT_EQ(Kinds, std::vector<Token::Kind>(
                       {Token::Kind::KwInt, Token::Kind::Ident,
                        Token::Kind::Assign, Token::Kind::IntLit,
                        Token::Kind::Plus, Token::Kind::IntLit,
                        Token::Kind::Semi, Token::Kind::Ident,
                        Token::Kind::TripleLt, Token::Kind::TripleGt,
                        Token::Kind::AmpAmp, Token::Kind::Eof}));
}

TEST(Lexer, NumbersAndStrings) {
  auto Tokens = lexSource("42 3.5 1e3 'a' \"hi\\n\"");
  ASSERT_EQ(Tokens.size(), 6u);
  EXPECT_EQ(Tokens[0].IntValue, 42);
  EXPECT_DOUBLE_EQ(Tokens[1].FloatValue, 3.5);
  EXPECT_DOUBLE_EQ(Tokens[2].FloatValue, 1000.0);
  EXPECT_EQ(Tokens[3].IntValue, 'a');
  EXPECT_EQ(Tokens[4].Text, "hi\n");
}

TEST(Lexer, TracksLineNumbers) {
  auto Tokens = lexSource("int\nx\n=\n3;");
  EXPECT_EQ(Tokens[0].Loc.Line, 1u);
  EXPECT_EQ(Tokens[1].Loc.Line, 2u);
  EXPECT_EQ(Tokens[3].Loc.Line, 4u);
}

TEST(Parser, ParsesFunctionsAndGlobals) {
  TranslationUnit TU = parseSource(R"(
    double data[8];
    const int N = 4;
    int add(int a, int b) { return a + b; }
    void empty(void);
  )");
  ASSERT_EQ(TU.Globals.size(), 2u);
  EXPECT_EQ(TU.Globals[0].Name, "data");
  EXPECT_EQ(TU.Globals[0].Ty.ArrayDims, std::vector<uint64_t>{8});
  EXPECT_TRUE(TU.Globals[1].Ty.IsConst);
  ASSERT_EQ(TU.Functions.size(), 2u);
  EXPECT_EQ(TU.Functions[0].Name, "add");
  ASSERT_EQ(TU.Functions[0].Params.size(), 2u);
  EXPECT_TRUE(TU.Functions[0].Body != nullptr);
  EXPECT_TRUE(TU.Functions[1].Body == nullptr);
}

TEST(Parser, ParsesKernelAndLaunch) {
  TranslationUnit TU = parseSource(R"(
    __kernel void k(double *a, long n) { }
    int main() {
      launch k<<<4, 32>>>((double*)0, 10);
      return 0;
    }
  )");
  ASSERT_EQ(TU.Functions.size(), 2u);
  EXPECT_TRUE(TU.Functions[0].IsKernel);
  const auto *Body = static_cast<const BlockStmt *>(TU.Functions[1].Body.get());
  ASSERT_GE(Body->Body.size(), 1u);
  EXPECT_EQ(Body->Body[0]->K, Stmt::Kind::Launch);
}

TEST(Parser, ArrayParameterDecays) {
  TranslationUnit TU = parseSource("void f(double a[16]) { }");
  ASSERT_EQ(TU.Functions[0].Params.size(), 1u);
  EXPECT_EQ(TU.Functions[0].Params[0].Ty.PtrDepth, 1u);
  EXPECT_TRUE(TU.Functions[0].Params[0].Ty.ArrayDims.empty());
}

TEST(IRGen, CompilesAndVerifies) {
  auto M = compileMiniC(R"(
    double A[4][4];
    int main() {
      int i;
      for (i = 0; i < 4; i++) {
        int j;
        for (j = 0; j < 4; j++)
          A[i][j] = i * 4.0 + j;
      }
      return (int)A[3][3];
    }
  )",
                        "gen");
  std::string Err;
  EXPECT_TRUE(verifyModule(*M, &Err)) << Err;
  Function *Main = M->getFunction("main");
  ASSERT_NE(Main, nullptr);
  EXPECT_FALSE(Main->isDeclaration());
}

TEST(IRGen, StringArrayGlobalGetsRelocations) {
  auto M = compileMiniC(R"(
    char *names[3] = {"alpha", "beta", "gamma"};
    int main() { return 0; }
  )",
                        "strs");
  GlobalVariable *Names = M->getGlobal("names");
  ASSERT_NE(Names, nullptr);
  EXPECT_EQ(Names->getRelocations().size(), 3u);
  EXPECT_EQ(Names->getSizeInBytes(), 24u);
}

TEST(IRGen, KernelFlagAndTidBuiltins) {
  auto M = compileMiniC(R"(
    __kernel void scale(double *a, long n) {
      long i = __tid();
      if (i < n)
        a[i] = a[i] * 2.0;
    }
    int main() { return 0; }
  )",
                        "kern");
  Function *K = M->getFunction("scale");
  ASSERT_NE(K, nullptr);
  EXPECT_TRUE(K->isKernel());
  std::string Err;
  EXPECT_TRUE(verifyModule(*M, &Err)) << Err;
}

TEST(IRGen, PointerArithmeticAndCasts) {
  auto M = compileMiniC(R"(
    int main() {
      char *p = malloc(64);
      long q = (long)p;
      int *ip = (int*)(p + 8);
      *ip = 42;
      free((char*)((long)p));
      return (int)(q % 2);
    }
  )",
                        "ptr");
  std::string Err;
  EXPECT_TRUE(verifyModule(*M, &Err)) << Err;
}

TEST(IRGen, ShortCircuitAndTernary) {
  auto M = compileMiniC(R"(
    int main() {
      int a = 3;
      int b = 0;
      int c = (a > 0 && b > 0) ? 1 : 2;
      int d = (a > 0 || b > 0) ? 5 : 6;
      return c * 10 + d;
    }
  )",
                        "sc");
  std::string Err;
  EXPECT_TRUE(verifyModule(*M, &Err)) << Err;
}
