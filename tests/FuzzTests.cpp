//===- tests/FuzzTests.cpp - Differential fuzzing subsystem tests -----------===//
//
// Part of the CGCM reproduction project.
//
//===----------------------------------------------------------------------===//

#include "fuzz/ApiFuzz.h"
#include "fuzz/Differ.h"
#include "fuzz/ProgGen.h"
#include "fuzz/Reducer.h"

#include "gtest/gtest.h"

#include <fstream>
#include <set>
#include <sstream>

using namespace cgcm;

namespace {

std::string readFile(const std::string &Path) {
  std::ifstream IS(Path);
  EXPECT_TRUE(IS.good()) << "cannot open " << Path;
  std::ostringstream OS;
  OS << IS.rdbuf();
  return OS.str();
}

std::string regressionDir() {
  // Set by tests/CMakeLists.txt to the source-tree tests/fuzz directory.
#ifdef CGCM_FUZZ_REGRESSION_DIR
  return CGCM_FUZZ_REGRESSION_DIR;
#else
  return "tests/fuzz";
#endif
}

//===----------------------------------------------------------------------===//
// Generator
//===----------------------------------------------------------------------===//

TEST(ProgGenTest, DeterministicInSeed) {
  for (uint64_t Seed : {0ull, 1ull, 42ull, 12345ull}) {
    ProgDesc A = generateProgram(Seed);
    ProgDesc B = generateProgram(Seed);
    EXPECT_EQ(A.render(), B.render()) << "seed " << Seed;
  }
}

TEST(ProgGenTest, SeedsProduceDistinctPrograms) {
  std::set<std::string> Rendered;
  for (uint64_t Seed = 0; Seed != 20; ++Seed)
    Rendered.insert(generateProgram(Seed).render());
  // Collisions would mean the seed isn't actually feeding the generator.
  EXPECT_GT(Rendered.size(), 15u);
}

TEST(ProgGenTest, GeneratedProgramsCompileAndAgree) {
  // A handful of seeds through the full oracle — this is the in-tree
  // smoke slice of the cgcm-fuzz sweep.
  for (uint64_t Seed = 0; Seed != 8; ++Seed) {
    ProgDesc P = generateProgram(Seed);
    DiffResult R = diffProgram(P.render(), "seed" + std::to_string(Seed));
    EXPECT_TRUE(R.Agreed) << "seed " << Seed << ":\n"
                          << R.Failure << "\nprogram:\n"
                          << P.render();
  }
}

TEST(ProgGenTest, AnyEnabledMaskRendersValidPrograms) {
  // The reducer relies on this: clearing arbitrary Enabled bits must
  // still yield a program every configuration agrees on.
  ProgDesc P = generateProgram(7);
  for (unsigned Drop = 0; Drop != std::min<size_t>(P.Ops.size(), 4); ++Drop) {
    ProgDesc Candidate = P;
    for (size_t I = Drop; I < Candidate.Ops.size(); I += 3)
      Candidate.Ops[I].Enabled = false;
    DiffResult R = diffProgram(Candidate.render(), "mask");
    EXPECT_TRUE(R.Agreed) << R.Failure << "\nprogram:\n" << Candidate.render();
  }
}

//===----------------------------------------------------------------------===//
// Differ
//===----------------------------------------------------------------------===//

TEST(DifferTest, AgreesOnStraightLineProgram) {
  const char *Src = R"(
__kernel void k(double *a, long n) {
  long i = __tid();
  if (i < n)
    a[i] = a[i] * 2.0;
}
int main() {
  long i; double s;
  double *a = (double*)malloc(8 * sizeof(double));
  for (i = 0; i < 8; i++) a[i] = (double)i;
  launch k<<<1, 32>>>(a, 8);
  s = 0.0;
  for (i = 0; i < 8; i++) s = s + a[i];
  print_f64(s);
  free((char*)a);
  return 0;
}
)";
  DiffResult R = diffProgram(Src, "straight");
  EXPECT_TRUE(R.Agreed) << R.Failure;
  EXPECT_NE(R.ReferenceOutput.find("56"), std::string::npos)
      << R.ReferenceOutput;
  EXPECT_TRUE(R.UnoptimizedAudit.clean()) << R.UnoptimizedAudit.str();
  EXPECT_TRUE(R.OptimizedAudit.clean()) << R.OptimizedAudit.str();
}

TEST(DifferTest, ComparesGlobalBytes) {
  // Kernel writes a global; all three configurations must leave the
  // same final bytes in it.
  const char *Src = R"(
double g[8];
__kernel void k(double *a, long n) {
  long i = __tid();
  if (i < n)
    a[i] = (double)i * 3.0;
}
int main() {
  launch k<<<1, 32>>>(g, 8);
  print_f64(g[7]);
  return 0;
}
)";
  DiffResult R = diffProgram(Src, "globals");
  EXPECT_TRUE(R.Agreed) << R.Failure;
}

TEST(DifferTest, RegressionProgramsAgree) {
  // The minimized anchors for the lifecycle fixes this subsystem found.
  for (const char *Name :
       {"free_while_mapped", "realloc_while_mapped", "array_remap_stale",
        "array_slot_swap"}) {
    std::string Src = readFile(regressionDir() + "/" + Name + ".minic");
    ASSERT_FALSE(Src.empty()) << Name;
    DiffResult R = diffProgram(Src, Name);
    EXPECT_TRUE(R.Agreed) << Name << ":\n" << R.Failure;
  }
}

TEST(DifferTest, AsyncSyncSweepAgrees) {
  // The asynchronous engine must be a pure timing change: for generated
  // programs, every stream count has to reproduce the synchronous
  // output, globals, and a clean audit (docs/TransferEngine.md).
  for (uint64_t Seed = 0; Seed != 6; ++Seed) {
    ProgDesc P = generateProgram(Seed);
    for (unsigned Streams : {1u, 2u, 8u}) {
      DiffResult R = diffProgram(
          P.render(), "async" + std::to_string(Seed), Streams);
      EXPECT_TRUE(R.Agreed) << "seed " << Seed << " streams " << Streams
                            << ":\n"
                            << R.Failure << "\nprogram:\n"
                            << P.render();
      EXPECT_TRUE(R.AsyncAudit.clean()) << R.AsyncAudit.str();
    }
  }
}

TEST(DifferTest, AsyncRegressionProgramsAgree) {
  // The lifecycle-bug anchors re-run under the async engine: the
  // free/realloc/remap races they pin down must not resurface as
  // missing-fence bugs.
  for (const char *Name :
       {"free_while_mapped", "realloc_while_mapped", "array_remap_stale",
        "array_slot_swap"}) {
    std::string Src = readFile(regressionDir() + "/" + Name + ".minic");
    ASSERT_FALSE(Src.empty()) << Name;
    DiffResult R = diffProgram(Src, Name, /*AsyncStreams=*/8);
    EXPECT_TRUE(R.Agreed) << Name << ":\n" << R.Failure;
  }
}

//===----------------------------------------------------------------------===//
// API-sequence fuzzing
//===----------------------------------------------------------------------===//

TEST(ApiFuzzTest, SmokeSeedsRunClean) {
  for (uint64_t Seed = 0; Seed != 10; ++Seed) {
    ApiFuzzResult R = runApiFuzz(Seed, 200);
    EXPECT_FALSE(R.Failed) << "seed " << Seed << ":\n" << R.Failure;
    EXPECT_TRUE(R.Audit.clean()) << "seed " << Seed << ":\n" << R.Audit.str();
    EXPECT_EQ(R.Steps, 200u);
  }
}

TEST(ApiFuzzTest, DeterministicInSeed) {
  ApiFuzzResult A = runApiFuzz(3, 100);
  ApiFuzzResult B = runApiFuzz(3, 100);
  EXPECT_EQ(A.Failed, B.Failed);
  EXPECT_EQ(A.Failure, B.Failure);
  EXPECT_EQ(A.Audit.Events, B.Audit.Events);
}

//===----------------------------------------------------------------------===//
// Reducer
//===----------------------------------------------------------------------===//

TEST(ReducerTest, MinimizesToThePredicateCore) {
  // Synthetic oracle: "fails" iff ops 2 and 5 are both enabled. The
  // reducer must strip everything else and keep exactly those two.
  ProgDesc P = generateProgram(11);
  ASSERT_GE(P.Ops.size(), 6u);
  auto StillFails = [](const ProgDesc &C) {
    return C.Ops[2].Enabled && C.Ops[5].Enabled;
  };
  ReduceStats Stats;
  ProgDesc Min = reduceProgram(P, StillFails, &Stats);
  EXPECT_EQ(Min.numEnabledOps(), 2u);
  EXPECT_TRUE(Min.Ops[2].Enabled);
  EXPECT_TRUE(Min.Ops[5].Enabled);
  EXPECT_GT(Stats.CandidatesTried, 1u);
  EXPECT_EQ(Stats.OpsBefore, P.numEnabledOps());
  EXPECT_EQ(Stats.OpsAfter, 2u);
}

TEST(ReducerTest, RefusesNonFailingInput) {
  ProgDesc P = generateProgram(11);
  unsigned Before = P.numEnabledOps();
  ReduceStats Stats;
  ProgDesc Out =
      reduceProgram(P, [](const ProgDesc &) { return false; }, &Stats);
  EXPECT_EQ(Out.numEnabledOps(), Before);
  EXPECT_EQ(Stats.CandidatesTried, 1u);
}

} // namespace
