//===- tests/GpuSimTests.cpp - Simulated memory and device tests --------------===//
//
// Part of the CGCM reproduction project.
//
//===----------------------------------------------------------------------===//

#include "gpusim/GPUDevice.h"
#include "gpusim/SimMemory.h"
#include "gpusim/Timing.h"

#include <gtest/gtest.h>

using namespace cgcm;

namespace {

TEST(SimMemory, AllocateFreeReuse) {
  SimMemory M(HostAddressBase, "test");
  uint64_t A = M.allocate(100);
  uint64_t B = M.allocate(100);
  EXPECT_NE(A, B);
  EXPECT_EQ(M.getNumLiveAllocations(), 2u);
  M.free(A);
  EXPECT_EQ(M.getNumLiveAllocations(), 1u);
  uint64_t C = M.allocate(100); // Same rounded size: block reused.
  EXPECT_EQ(C, A);
}

TEST(SimMemory, FindAllocationHandlesInteriorAndGaps) {
  SimMemory M(HostAddressBase, "test");
  uint64_t A = M.allocate(64);
  uint64_t B = M.allocate(64);
  M.free(A);
  uint64_t Base, Size;
  EXPECT_FALSE(M.findAllocation(A + 10, Base, Size)); // Freed.
  ASSERT_TRUE(M.findAllocation(B + 63, Base, Size));
  EXPECT_EQ(Base, B);
}

TEST(SimMemory, IsAccessibleChecksSpansWithinUnits) {
  SimMemory M(HostAddressBase, "test");
  uint64_t A = M.allocate(64);
  EXPECT_TRUE(M.isAccessible(A, 64));
  EXPECT_TRUE(M.isAccessible(A + 56, 8));
  EXPECT_FALSE(M.isAccessible(A + 60, 8)); // Crosses the 64-byte bound.
}

TEST(SimMemory, ReallocPreservesContents) {
  SimMemory M(HostAddressBase, "test");
  uint64_t A = M.allocate(32);
  uint64_t V = 0xDEADBEEF;
  M.writeUInt(A + 8, V, 8);
  uint64_t B = M.reallocate(A, 128);
  EXPECT_EQ(M.readUInt(B + 8, 8), V);
  uint64_t Base, Size;
  ASSERT_TRUE(M.findAllocation(B, Base, Size));
  EXPECT_EQ(Size, 128u);
}

TEST(SimMemory, ScalarReadWriteWidths) {
  SimMemory M(HostAddressBase, "test");
  uint64_t A = M.allocate(16);
  M.writeUInt(A, 0xAB, 1);
  M.writeUInt(A + 4, 0xCDEF, 2);
  M.writeUInt(A + 8, 0x123456789ABCDEFull, 8);
  EXPECT_EQ(M.readUInt(A, 1), 0xABu);
  EXPECT_EQ(M.readUInt(A + 4, 2), 0xCDEFu);
  EXPECT_EQ(M.readUInt(A + 8, 8), 0x123456789ABCDEFull);
}

TEST(SimMemory, CStringRoundTrip) {
  SimMemory M(HostAddressBase, "test");
  uint64_t A = M.allocate(16);
  const char *S = "hello";
  M.write(A, S, 6);
  EXPECT_EQ(M.readCString(A), "hello");
}

TEST(SimMemory, FreeOfInteriorPointerIsFatal) {
  SimMemory M(HostAddressBase, "test");
  uint64_t A = M.allocate(64);
  EXPECT_DEATH(M.free(A + 8), "not a live allocation base");
}

TEST(SimMemory, OutOfSpaceAccessIsFatal) {
  SimMemory M(HostAddressBase, "test");
  EXPECT_DEATH(M.readUInt(HostAddressBase - 100, 8),
               "outside this memory space");
}

TEST(SimMemory, DeviceAddressPredicate) {
  EXPECT_FALSE(isDeviceAddress(HostAddressBase));
  EXPECT_FALSE(isDeviceAddress(DeviceAddressBase - 1));
  EXPECT_TRUE(isDeviceAddress(DeviceAddressBase));
  EXPECT_TRUE(isDeviceAddress(DeviceAddressBase + (1ull << 30)));
}

TEST(GPUDevice, TransfersMoveBytesAndChargeModel) {
  TimingModel TM;
  ExecStats Stats;
  SimMemory Host(HostAddressBase, "host");
  GPUDevice Dev(TM, Stats);

  uint64_t H = Host.allocate(256);
  for (unsigned I = 0; I != 256; ++I) {
    uint8_t B = static_cast<uint8_t>(I);
    Host.write(H + I, &B, 1);
  }
  uint64_t D = Dev.cuMemAlloc(256);
  Dev.cuMemcpyHtoD(D, Host, H, 256);
  EXPECT_EQ(Stats.BytesHtoD, 256u);
  EXPECT_EQ(Stats.TransfersHtoD, 1u);
  EXPECT_DOUBLE_EQ(Stats.CommCycles, TM.transferCycles(256));

  uint8_t Byte;
  Dev.getMemory().read(D + 200, &Byte, 1);
  EXPECT_EQ(Byte, 200);

  // Mutate on device, copy back.
  Byte = 77;
  Dev.getMemory().write(D + 3, &Byte, 1);
  Dev.cuMemcpyDtoH(Host, H, D, 256);
  Host.read(H + 3, &Byte, 1);
  EXPECT_EQ(Byte, 77);
  EXPECT_EQ(Stats.BytesDtoH, 256u);
}

TEST(GPUDevice, ModuleGlobalsAreStableNamedRegions) {
  TimingModel TM;
  ExecStats Stats;
  GPUDevice Dev(TM, Stats);
  uint64_t A1 = Dev.cuModuleGetGlobal("alpha", 64);
  uint64_t A2 = Dev.cuModuleGetGlobal("alpha", 64);
  uint64_t B = Dev.cuModuleGetGlobal("beta", 16);
  EXPECT_EQ(A1, A2);
  EXPECT_NE(A1, B);
  EXPECT_TRUE(Dev.hasModuleGlobal("alpha"));
  EXPECT_FALSE(Dev.hasModuleGlobal("gamma"));
}

TEST(GPUDevice, TimelineRecordsTransfers) {
  TimingModel TM;
  ExecStats Stats;
  SimMemory Host(HostAddressBase, "host");
  GPUDevice Dev(TM, Stats);
  Dev.setTimelineEnabled(true);
  uint64_t H = Host.allocate(64);
  uint64_t D = Dev.cuMemAlloc(64);
  Dev.cuMemcpyHtoD(D, Host, H, 64);
  Dev.cuMemcpyDtoH(Host, H, D, 64);
  ASSERT_EQ(Dev.getTimeline().size(), 2u);
  EXPECT_EQ(Dev.getTimeline()[0].Kind, EventKind::HtoD);
  EXPECT_EQ(Dev.getTimeline()[1].Kind, EventKind::DtoH);
  EXPECT_EQ(Dev.getTimeline()[0].Bytes, 64u);
  // Events are ordered in time.
  EXPECT_LE(Dev.getTimeline()[0].StartCycle,
            Dev.getTimeline()[1].StartCycle);
}

TEST(TimingModel, KernelCostSaturatesAtWidth) {
  TimingModel TM;
  // Fewer threads than lanes: cost scales with 1/threads.
  double Narrow = TM.kernelCycles(/*Ops=*/6400, /*Threads=*/2);
  double Wide = TM.kernelCycles(6400, 1u << 20);
  EXPECT_GT(Narrow, Wide);
  EXPECT_DOUBLE_EQ(Wide - TM.KernelLaunchLatency,
                   6400.0 * TM.GpuThreadCyclesPerOp / TM.GpuParallelWidth);
  // Zero-op launch still pays the launch latency.
  EXPECT_DOUBLE_EQ(TM.kernelCycles(0, 1), TM.KernelLaunchLatency);
}

TEST(TimingModel, TransferCostIsAffineInBytes) {
  TimingModel TM;
  double C0 = TM.transferCycles(0);
  double C1 = TM.transferCycles(8000);
  EXPECT_DOUBLE_EQ(C0, TM.TransferLatency);
  EXPECT_DOUBLE_EQ(C1 - C0, 8000.0 / TM.TransferBytesPerCycle);
}

TEST(ExecStats, TotalIsTheSumOfComponents) {
  ExecStats S;
  S.CpuCycles = 10;
  S.GpuCycles = 20;
  S.CommCycles = 30;
  S.InspectorCycles = 40;
  S.RuntimeCycles = 50;
  EXPECT_DOUBLE_EQ(S.totalCycles(), 150.0);
  S.reset();
  EXPECT_DOUBLE_EQ(S.totalCycles(), 0.0);
}

} // namespace
