//===- tests/IRParserTests.cpp - Print/parse round-trip tests ------------------===//
//
// Part of the CGCM reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Round-trip properties of the textual IR: print -> parse -> print is a
/// fixpoint after one cycle, the parsed module verifies, and — the
/// strongest check — the parsed module *executes identically*, across
/// every workload in the suite at every pipeline stage.
///
//===----------------------------------------------------------------------===//

#include "exec/Machine.h"
#include "frontend/IRGen.h"
#include "ir/IRParser.h"
#include "transform/Pipeline.h"
#include "workloads/Runner.h"

#include <gtest/gtest.h>

using namespace cgcm;

namespace {

std::string runModule(Module &M, LaunchPolicy Policy) {
  Machine Mach;
  Mach.setLaunchPolicy(Policy);
  Mach.loadModule(M);
  Mach.run();
  return Mach.getOutput();
}

TEST(IRParserBasics, ParsesHandWrittenModule) {
  const char *Text = R"(
@counter = global i64 init "0000000000000000"
declare void @print_i64(i64 %arg0.0)

define i32 @main() {
entry:
  %0 = load i64, @counter
  %1 = add i64 %0, 5
  store i64 %1, @counter
  %2 = cmp slt i64 %1, 10
  br %2, small, big
small:
  call @print_i64(1)
  br done
big:
  call @print_i64(2)
  br done
done:
  %3 = phi i32 [10, small], [20, big]
  ret i32 %3
}
)";
  auto M = parseIR(Text, "hand");
  ASSERT_NE(M->getFunction("main"), nullptr);
  EXPECT_EQ(runModule(*M, LaunchPolicy::Managed), "1\n");

  Machine Mach;
  Mach.loadModule(*M);
  EXPECT_EQ(Mach.run(), 10);
}

TEST(IRParserBasics, RoundTripsKernelsAndLaunches) {
  const char *Src = R"(
    double data[32];
    __kernel void scale(double *p, long n) {
      long i = __tid();
      if (i < n) p[i] = p[i] * 3.0;
    }
    int main() {
      int i;
      for (i = 0; i < 32; i++) data[i] = i;
      launch scale<<<1, 32>>>(data, 32);
      double s = 0.0;
      for (i = 0; i < 32; i++) s += data[i];
      print_f64(s);
      return 0;
    }
  )";
  auto M = compileMiniC(Src, "k");
  runCGCMPipeline(*M, [] {
    PipelineOptions O;
    O.Parallelize = false;
    return O;
  }());
  std::string Text = M->getString();
  auto P = parseIR(Text, "k2");
  Function *K = P->getFunction("scale");
  ASSERT_NE(K, nullptr);
  EXPECT_TRUE(K->isKernel());
  EXPECT_EQ(runModule(*P, LaunchPolicy::Managed),
            runModule(*M, LaunchPolicy::Managed));
}

TEST(IRParserBasics, ShardableHaloRoundTrips) {
  const char *Text = R"(
declare void @print_i64(i64 %arg0.0)

define kernel shardable(64) void @k(i64 %arg0.0) {
entry:
  ret
}

define i32 @main() {
entry:
  ret i32 0
}
)";
  auto M = parseIR(Text, "shard");
  Function *K = M->getFunction("k");
  ASSERT_NE(K, nullptr);
  EXPECT_TRUE(K->isKernel());
  EXPECT_TRUE(K->isShardable());
  EXPECT_EQ(K->getHaloBytes(), 64u);
  // The attribute survives print -> parse unchanged, and printing is a
  // fixpoint.
  std::string Printed = M->getString();
  EXPECT_NE(Printed.find("define kernel shardable(64) void @k"),
            std::string::npos);
  auto P = parseIR(Printed, "shard");
  Function *K2 = P->getFunction("k");
  ASSERT_NE(K2, nullptr);
  EXPECT_TRUE(K2->isShardable());
  EXPECT_EQ(K2->getHaloBytes(), 64u);
  EXPECT_EQ(P->getString(), Printed);
}

TEST(IRParserBasics, PreservesGlobalInitializersAndRelocations) {
  auto M = compileMiniC(R"(
    char *words[2] = {"ab", "xyz"};
    int t[3] = {7, 8, 9};
    int main() {
      print_str(words[1]);
      print_i64(t[0] + t[2]);
      return 0;
    }
  )",
                        "g");
  auto P = parseIR(M->getString(), "g2");
  GlobalVariable *Words = P->getGlobal("words");
  ASSERT_NE(Words, nullptr);
  EXPECT_EQ(Words->getRelocations().size(), 2u);
  EXPECT_EQ(runModule(*P, LaunchPolicy::Managed), "xyz\n16\n");
}

TEST(IRParserBasics, ErrorsAreFatalWithLineNumbers) {
  EXPECT_DEATH(parseIR("define i32 @f() {\nentry:\n  ret i32 %nope\n}\n"),
               "use of undefined value");
  EXPECT_DEATH(parseIR("@g = global i33\n"), "unsupported integer");
}

TEST(IRParserBasics, ParsesExplicitSourceLocations) {
  auto M = parseIR("define i32 @main() {\n"
                   "entry:\n"
                   "  %0 = add i32 1, 2 !loc 7:3\n"
                   "  ret i32 %0\n"
                   "}\n",
                   "loc");
  std::vector<Instruction *> Insts = M->getFunction("main")->instructions();
  ASSERT_EQ(Insts.size(), 2u);
  EXPECT_EQ(Insts[0]->getLoc(), (SourceLoc{7, 3}));
  EXPECT_FALSE(Insts[1]->hasLoc()); // No metadata: location stays "none".
}

TEST(IRParserBasics, RoundTripsSourceLocations) {
  auto M = compileMiniC(R"(
    __kernel void scale(double *p, long n) {
      long i = __tid();
      if (i < n) p[i] = p[i] * 3.0;
    }
    int main() {
      double *p = (double*)malloc(8 * 8);
      launch scale<<<1, 8>>>(p, 8);
      return 0;
    }
  )",
                        "loc_rt");
  runCGCMPipeline(*M, [] {
    PipelineOptions O;
    O.Parallelize = false;
    return O;
  }());
  auto P = parseIR(M->getString(), "loc_rt2");
  bool SawLocated = false;
  for (const auto &F : M->functions()) {
    if (F->isDeclaration())
      continue;
    Function *PF = P->getFunction(F->getName());
    ASSERT_NE(PF, nullptr);
    std::vector<Instruction *> A = F->instructions();
    std::vector<Instruction *> B = PF->instructions();
    ASSERT_EQ(A.size(), B.size()) << F->getName();
    for (size_t I = 0; I != A.size(); ++I) {
      EXPECT_EQ(A[I]->getLoc(), B[I]->getLoc())
          << F->getName() << " instruction " << I;
      SawLocated |= A[I]->hasLoc();
    }
  }
  EXPECT_TRUE(SawLocated); // The frontend stamped real positions.
}

//===----------------------------------------------------------------------===//
// Whole-suite round trip
//===----------------------------------------------------------------------===//

class RoundTrip : public ::testing::TestWithParam<Workload> {};

TEST_P(RoundTrip, OptimizedModuleSurvivesPrintParseExecute) {
  const Workload &W = GetParam();
  auto M = compileMiniC(W.Source, W.Name);
  runCGCMPipeline(*M);

  std::string Text1 = M->getString();
  auto P1 = parseIR(Text1, W.Name + ".rt");
  std::string Text2 = P1->getString();
  auto P2 = parseIR(Text2, W.Name + ".rt");
  std::string Text3 = P2->getString();
  // One cycle reaches the fixpoint (names/numbering stabilize).
  EXPECT_EQ(Text2, Text3) << W.Name;

  // Same observable behaviour.
  Machine A, B;
  A.setLaunchPolicy(LaunchPolicy::Managed);
  B.setLaunchPolicy(LaunchPolicy::Managed);
  A.setOpLimit(500u * 1000u * 1000u);
  B.setOpLimit(500u * 1000u * 1000u);
  A.loadModule(*M);
  B.loadModule(*P2);
  A.run();
  B.run();
  EXPECT_EQ(A.getOutput(), B.getOutput()) << W.Name;
}

INSTANTIATE_TEST_SUITE_P(AllPrograms, RoundTrip,
                         ::testing::ValuesIn(getWorkloads()),
                         [](const ::testing::TestParamInfo<Workload> &Info) {
                           std::string N = Info.param.Name;
                           for (char &C : N)
                             if (C == '-')
                               C = '_';
                           return N;
                         });

} // namespace
