//===- tests/IRTests.cpp - IR core unit tests ----------------------------------===//
//
// Part of the CGCM reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Unit tests for the IR substrate: type uniquing and layout, constant
/// interning, def-use maintenance and RAUW, block/instruction surgery,
/// the printer, and the verifier's rejection of malformed IR.
///
//===----------------------------------------------------------------------===//

#include "ir/IRBuilder.h"
#include "ir/Module.h"
#include "ir/Verifier.h"

#include <gtest/gtest.h>

using namespace cgcm;

namespace {

TEST(Types, UniquingAndIdentity) {
  Module M("t");
  TypeContext &Ctx = M.getContext();
  EXPECT_EQ(Ctx.getInt32Ty(), Ctx.getIntegerTy(32));
  EXPECT_EQ(Ctx.getPointerTo(Ctx.getDoubleTy()),
            Ctx.getPointerTo(Ctx.getDoubleTy()));
  EXPECT_NE(Ctx.getPointerTo(Ctx.getDoubleTy()),
            Ctx.getPointerTo(Ctx.getFloatTy()));
  EXPECT_EQ(Ctx.getArrayTy(Ctx.getInt8Ty(), 16),
            Ctx.getArrayTy(Ctx.getInt8Ty(), 16));
  EXPECT_NE(Ctx.getArrayTy(Ctx.getInt8Ty(), 16),
            Ctx.getArrayTy(Ctx.getInt8Ty(), 17));
  EXPECT_EQ(Ctx.getFunctionTy(Ctx.getVoidTy(), {Ctx.getInt32Ty()}),
            Ctx.getFunctionTy(Ctx.getVoidTy(), {Ctx.getInt32Ty()}));
}

TEST(Types, SizesAndStrings) {
  Module M("t");
  TypeContext &Ctx = M.getContext();
  EXPECT_EQ(Ctx.getInt1Ty()->getSizeInBytes(), 1u);
  EXPECT_EQ(Ctx.getInt16Ty()->getSizeInBytes(), 2u);
  EXPECT_EQ(Ctx.getFloatTy()->getSizeInBytes(), 4u);
  EXPECT_EQ(Ctx.getPointerTo(Ctx.getVoidTy())->getSizeInBytes(), 8u);
  Type *Arr = Ctx.getArrayTy(Ctx.getArrayTy(Ctx.getDoubleTy(), 4), 3);
  EXPECT_EQ(Arr->getSizeInBytes(), 96u);
  EXPECT_EQ(Arr->getString(), "[3 x [4 x double]]");
  EXPECT_EQ(Ctx.getPointerTo(Ctx.getInt8Ty())->getString(), "i8*");
}

TEST(Constants, InterningCanonicalizesByWidth) {
  Module M("t");
  TypeContext &Ctx = M.getContext();
  EXPECT_EQ(M.getInt32(5), M.getInt32(5));
  EXPECT_NE(M.getInt32(5), M.getInt64(5));
  // i8 constants canonicalize to their sign-extended value.
  ConstantInt *A = M.getConstantInt(Ctx.getInt8Ty(), 200);
  ConstantInt *B = M.getConstantInt(Ctx.getInt8Ty(), -56);
  EXPECT_EQ(A, B);
  EXPECT_EQ(A->getValue(), -56);
  EXPECT_EQ(A->getZExtValue(), 200u);
  EXPECT_EQ(M.getConstantFP(Ctx.getDoubleTy(), 1.5),
            M.getConstantFP(Ctx.getDoubleTy(), 1.5));
  EXPECT_EQ(M.getNullPtr(Ctx.getPointerTo(Ctx.getInt8Ty())),
            M.getNullPtr(Ctx.getPointerTo(Ctx.getInt8Ty())));
}

/// Builds `i32 f(i32 a) { return a + 1 + a + 1; }`-ish IR for use-list
/// tests.
struct TestFunction {
  Module M{"t"};
  Function *F = nullptr;
  BasicBlock *Entry = nullptr;
  IRBuilder B{M};

  TestFunction() {
    TypeContext &Ctx = M.getContext();
    F = M.getOrCreateFunction(
        "f", Ctx.getFunctionTy(Ctx.getInt32Ty(), {Ctx.getInt32Ty()}));
    Entry = F->createBlock("entry");
    B.setInsertPoint(Entry);
  }
};

TEST(UseLists, RAUWRewritesAllUses) {
  TestFunction T;
  Value *A = T.F->getArg(0);
  Value *One = T.M.getInt32(1);
  auto *Add1 = T.B.createAdd(A, One);
  auto *Add2 = T.B.createAdd(Add1, Add1); // Two uses of Add1.
  T.B.createRet(Add2);

  EXPECT_EQ(Add1->getNumUses(), 2u);
  auto *Sub = T.B.createSub(A, One);
  // Move Sub before its new users so dominance still holds.
  auto Owned = Sub->removeFromParent();
  T.Entry->insertBefore(Add1, std::move(Owned));
  Add1->replaceAllUsesWith(Sub);
  EXPECT_EQ(Add1->getNumUses(), 0u);
  EXPECT_EQ(Sub->getNumUses(), 2u);
  EXPECT_EQ(Add2->getLHS(), Sub);
  EXPECT_EQ(Add2->getRHS(), Sub);
  Add1->eraseFromParent();
  std::string Err;
  EXPECT_TRUE(verifyFunction(*T.F, &Err)) << Err;
}

TEST(UseLists, SetOperandMaintainsBothSides) {
  TestFunction T;
  Value *A = T.F->getArg(0);
  Value *One = T.M.getInt32(1);
  Value *Two = T.M.getInt32(2);
  auto *Add = T.B.createAdd(A, One);
  EXPECT_EQ(One->getNumUses(), 1u);
  Add->setOperand(1, Two);
  EXPECT_EQ(One->getNumUses(), 0u);
  EXPECT_EQ(Two->getNumUses(), 1u);
  T.B.createRet(Add);
}

TEST(Blocks, InsertionAndRemoval) {
  TestFunction T;
  Value *A = T.F->getArg(0);
  auto *Add = T.B.createAdd(A, T.M.getInt32(1));
  auto *Ret = T.B.createRet(Add);
  // Insert a mul between add and ret.
  T.B.setInsertPoint(Ret);
  auto *Mul = T.B.createMul(Add, T.M.getInt32(3));
  Ret->setOperand(0, Mul);
  std::vector<Instruction *> Order = T.F->instructions();
  ASSERT_EQ(Order.size(), 3u);
  EXPECT_EQ(Order[0], Add);
  EXPECT_EQ(Order[1], Mul);
  EXPECT_EQ(Order[2], Ret);
  std::string Err;
  EXPECT_TRUE(verifyFunction(*T.F, &Err)) << Err;
}

TEST(Printer, RendersRecognizableText) {
  TestFunction T;
  Value *A = T.F->getArg(0);
  auto *Add = T.B.createAdd(A, T.M.getInt32(1), "sum");
  T.B.createRet(Add);
  std::string Text = T.M.getString();
  EXPECT_NE(Text.find("define i32 @f"), std::string::npos);
  EXPECT_NE(Text.find("add"), std::string::npos);
  EXPECT_NE(Text.find("ret"), std::string::npos);
  EXPECT_NE(Text.find("%sum"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Verifier rejection tests
//===----------------------------------------------------------------------===//

TEST(Verifier, RejectsMissingTerminator) {
  TestFunction T;
  T.B.createAdd(T.F->getArg(0), T.M.getInt32(1));
  std::string Err;
  EXPECT_FALSE(verifyFunction(*T.F, &Err));
  EXPECT_NE(Err.find("terminator"), std::string::npos);
}

TEST(Verifier, RejectsTypeMismatchedStore) {
  TestFunction T;
  TypeContext &Ctx = T.M.getContext();
  auto *Slot = T.B.createAlloca(Ctx.getDoubleTy());
  // Store an i32 into a double slot: constructed manually to bypass the
  // builder's assert.
  auto Bad = std::make_unique<StoreInst>(T.M.getInt32(1), Slot,
                                         Ctx.getVoidTy());
  T.Entry->push_back(std::move(Bad));
  T.B.createRet(T.M.getInt32(0));
  std::string Err;
  EXPECT_FALSE(verifyFunction(*T.F, &Err));
  EXPECT_NE(Err.find("store value type"), std::string::npos);
}

TEST(Verifier, RejectsUseBeforeDef) {
  TestFunction T;
  Value *A = T.F->getArg(0);
  auto *Add1 = T.B.createAdd(A, T.M.getInt32(1));
  auto *Add2 = T.B.createAdd(Add1, T.M.getInt32(2));
  T.B.createRet(Add2);
  // Move Add2 before Add1: now it uses a later definition.
  auto Owned = Add2->removeFromParent();
  T.Entry->insertBefore(Add1, std::move(Owned));
  std::string Err;
  EXPECT_FALSE(verifyFunction(*T.F, &Err));
  EXPECT_NE(Err.find("dominate"), std::string::npos);
}

TEST(Verifier, RejectsBadPhiIncoming) {
  TestFunction T;
  TypeContext &Ctx = T.M.getContext();
  BasicBlock *Next = T.F->createBlock("next");
  T.B.createBr(Next);
  T.B.setInsertPoint(Next);
  auto *Phi = T.B.createPhi(Ctx.getInt32Ty());
  Phi->addIncoming(T.M.getInt32(1), T.Entry);
  Phi->addIncoming(T.M.getInt32(2), Next); // Not a predecessor.
  T.B.createRet(Phi);
  std::string Err;
  EXPECT_FALSE(verifyFunction(*T.F, &Err));
  EXPECT_NE(Err.find("phi"), std::string::npos);
}

TEST(Verifier, RejectsWrongArgumentCount) {
  TestFunction T;
  TypeContext &Ctx = T.M.getContext();
  Function *Callee = T.M.getOrCreateFunction(
      "g", Ctx.getFunctionTy(Ctx.getVoidTy(), {Ctx.getInt32Ty()}));
  auto Bad = std::make_unique<CallInst>(Callee, Ctx.getVoidTy(),
                                        std::vector<Value *>{}, "");
  T.Entry->push_back(std::move(Bad));
  T.B.createRet(T.M.getInt32(0));
  std::string Err;
  EXPECT_FALSE(verifyFunction(*T.F, &Err));
  EXPECT_NE(Err.find("argument count"), std::string::npos);
}

TEST(Verifier, RejectsPointerStoreInKernel) {
  Module M("k");
  TypeContext &Ctx = M.getContext();
  Type *I8Ptr = Ctx.getPointerTo(Ctx.getInt8Ty());
  Function *K = M.getOrCreateFunction(
      "kern", Ctx.getFunctionTy(Ctx.getVoidTy(),
                                {I8Ptr, Ctx.getPointerTo(I8Ptr)}));
  K->setKernel(true);
  IRBuilder B(M);
  B.setInsertPoint(K->createBlock("entry"));
  B.createStore(K->getArg(0), K->getArg(1)); // Pointer store: forbidden.
  B.createRet();
  std::string Err;
  EXPECT_FALSE(verifyFunction(*K, &Err));
  EXPECT_NE(Err.find("pointer"), std::string::npos);
}

TEST(Functions, AppendArgumentExtendsTypeAndCalls) {
  Module M("t");
  TypeContext &Ctx = M.getContext();
  Function *F = M.getOrCreateFunction(
      "f", Ctx.getFunctionTy(Ctx.getVoidTy(), {Ctx.getInt32Ty()}));
  IRBuilder B(M);
  B.setInsertPoint(F->createBlock("entry"));
  B.createRet();

  Function *Main = M.getOrCreateFunction(
      "main", Ctx.getFunctionTy(Ctx.getInt32Ty(), {}));
  B.setInsertPoint(Main->createBlock("entry"));
  auto *Call = B.createCall(F, {M.getInt32(7)});
  B.createRet(M.getInt32(0));

  Argument *New = F->appendArgument(Ctx.getDoubleTy(), "extra");
  Call->appendArg(M.getConstantFP(Ctx.getDoubleTy(), 2.5));
  EXPECT_EQ(F->getNumArgs(), 2u);
  EXPECT_EQ(New->getArgNo(), 1u);
  EXPECT_EQ(F->getFunctionType()->getNumParams(), 2u);
  std::string Err;
  EXPECT_TRUE(verifyModule(M, &Err)) << Err;
}

TEST(Casting, IsaCastDynCast) {
  Module M("t");
  Value *C = M.getInt32(1);
  EXPECT_TRUE(isa<ConstantInt>(C));
  EXPECT_TRUE(isa<Constant>(C));
  EXPECT_FALSE(isa<ConstantFP>(C));
  EXPECT_TRUE((isa<ConstantFP, ConstantInt>(C))); // Variadic isa.
  EXPECT_NE(dyn_cast<ConstantInt>(C), nullptr);
  EXPECT_EQ(dyn_cast<ConstantFP>(C), nullptr);
  EXPECT_EQ(cast<ConstantInt>(C)->getValue(), 1);
  Value *Null = nullptr;
  EXPECT_EQ(dyn_cast_or_null<ConstantInt>(Null), nullptr);
  EXPECT_FALSE(isa_and_nonnull<ConstantInt>(Null));
}

} // namespace
