//===- tests/InterpreterEdgeTests.cpp - Interpreter semantics corners ----------===//
//
// Part of the CGCM reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Edge cases of the execution model: integer width wrap-around, float
/// rounding through memory, pointer/int casts, shift semantics, global
/// relocations, nested/recursive calls on the GPU, grid-stride coverage
/// with odd extents, and the machine's diagnostic traps.
///
//===----------------------------------------------------------------------===//

#include "exec/Machine.h"
#include "frontend/IRGen.h"
#include "transform/Pipeline.h"

#include <gtest/gtest.h>

using namespace cgcm;

namespace {

int64_t runMain(const std::string &Src, std::string *Out = nullptr) {
  auto M = compileMiniC(Src, "edge");
  Machine Mach;
  Mach.loadModule(*M);
  int64_t R = Mach.run();
  if (Out)
    *Out = Mach.getOutput();
  return R;
}

TEST(InterpEdge, CharWrapAndSignedness) {
  EXPECT_EQ(runMain("int main() { char c = 127; c = c + 1; return c; }"),
            -128);
  EXPECT_EQ(runMain("int main() { char c = 255; return c; }"), -1);
  EXPECT_EQ(runMain(R"(
    int main() {
      char buf[2];
      buf[0] = 200;
      return buf[0] < 0 ? 1 : 0;
    }
  )"),
            1); // Sign-extends on load too.
}

TEST(InterpEdge, LongArithmeticKeeps64Bits) {
  EXPECT_EQ(runMain(R"(
    int main() {
      long big = 1;
      int i;
      for (i = 0; i < 62; i++) big = big * 2;
      long half = big / 2;
      return half * 2 == big ? 1 : 0;
    }
  )"),
            1);
}

TEST(InterpEdge, ShiftSemantics) {
  EXPECT_EQ(runMain("int main() { return (-8) >> 1; }"), -4); // Arithmetic.
  EXPECT_EQ(runMain("int main() { return 1 << 30 >> 29; }"), 2);
}

TEST(InterpEdge, FloatRoundsThroughMemory) {
  // 0.1f stored to a float slot then widened differs from 0.1 double.
  EXPECT_EQ(runMain(R"(
    int main() {
      float f = 0.1;
      double d = 0.1;
      double fd = f;
      return fd == d ? 1 : 0;
    }
  )"),
            0);
  // But stays consistent with itself.
  EXPECT_EQ(runMain(R"(
    float spill[4];
    int main() {
      float f = 0.1;
      spill[2] = f;
      return spill[2] == f ? 1 : 0;
    }
  )"),
            1);
}

TEST(InterpEdge, PointerIntRoundTrip) {
  EXPECT_EQ(runMain(R"(
    double slot[4];
    int main() {
      double *p = slot + 2;
      long bits = (long)p;
      double *q = (double*)bits;
      *q = 9.0;
      return (int)slot[2];
    }
  )"),
            9);
}

TEST(InterpEdge, PointerComparisons) {
  EXPECT_EQ(runMain(R"(
    double a[8];
    int main() {
      double *lo = a + 1;
      double *hi = a + 5;
      int n = 0;
      double *p;
      for (p = lo; p < hi; p = p + 1)
        n++;
      return n;
    }
  )"),
            4);
}

TEST(InterpEdge, GlobalRelocationsPointAtGlobals) {
  std::string Out;
  runMain(R"(
    char a0[4] = "ab";
    char a1[4] = "cd";
    char *table[2];
    int main() {
      table[0] = a0;
      table[1] = a1;
      table[0][0] = 'z';
      print_str(a0);
      return 0;
    }
  )",
          &Out);
  EXPECT_EQ(Out, "zb\n");
}

TEST(InterpEdge, RecursiveDeviceFunctionInsideKernel) {
  const char *Src = R"(
    long fact(long n) {
      if (n <= 1)
        return 1;
      return n * fact(n - 1);
    }
    long out[8];
    __kernel void k(long n) {
      long i = __tid();
      if (i < n)
        out[i] = fact(i + 1);
    }
    int main() {
      launch k<<<1, 8>>>(8);
      print_i64(out[7]);
      return 0;
    }
  )";
  auto M = compileMiniC(Src, "rec");
  PipelineOptions Opts;
  Opts.Parallelize = false;
  runCGCMPipeline(*M, Opts);
  Machine Mach;
  Mach.setLaunchPolicy(LaunchPolicy::Managed);
  Mach.loadModule(*M);
  Mach.run();
  EXPECT_EQ(Mach.getOutput(), "40320\n");
}

TEST(InterpEdge, GridStrideWithOddExtents) {
  // 1000 iterations over 2 blocks x 128 threads: each thread loops ~4x.
  const char *Src = R"(
    long out[1000];
    __kernel void fill(long n) {
      long i = __tid();
      long stride = __ntid();
      while (i < n) {
        out[i] = i * 3;
        i = i + stride;
      }
    }
    int main() {
      launch fill<<<2, 128>>>(1000);
      long s = 0;
      int i;
      for (i = 0; i < 1000; i++) s += out[i];
      print_i64(s);
      return 0;
    }
  )";
  auto M = compileMiniC(Src, "grid");
  PipelineOptions Opts;
  Opts.Parallelize = false;
  runCGCMPipeline(*M, Opts);
  Machine Mach;
  Mach.setLaunchPolicy(LaunchPolicy::Managed);
  Mach.loadModule(*M);
  Mach.run();
  EXPECT_EQ(Mach.getOutput(), "1498500\n"); // 3 * 999*1000/2
}

TEST(InterpEdge, StackOverflowTraps) {
  EXPECT_DEATH(runMain("int f(int n) { return f(n + 1); } "
                       "int main() { return f(0); }"),
               "call stack overflow");
}

TEST(InterpEdge, TidOutsideKernelTraps) {
  EXPECT_DEATH(runMain("int main() { return (int)__tid(); }"),
               "outside a GPU function");
}

TEST(InterpEdge, MallocInsideKernelTraps) {
  const char *Src = R"(
    __kernel void k() {
      char *p = malloc(8);
      p[0] = 1;
    }
    int main() {
      launch k<<<1, 1>>>();
      return 0;
    }
  )";
  auto M = compileMiniC(Src, "mk");
  Machine Mach;
  Mach.loadModule(*M);
  EXPECT_DEATH(Mach.run(), "malloc called inside a GPU function");
}

TEST(InterpEdge, CheckedMemoryCatchesOutOfBounds) {
  const char *Src = R"(
    int main() {
      double *p = (double*)malloc(4 * sizeof(double));
      p[9] = 1.0;
      return 0;
    }
  )";
  auto M = compileMiniC(Src, "oob");
  Machine Mach;
  Mach.setCheckedMemory(true);
  Mach.loadModule(*M);
  EXPECT_DEATH(Mach.run(), "outside every live allocation unit");
}

TEST(InterpEdge, SelectAndTernaryAgree) {
  EXPECT_EQ(runMain(R"(
    int main() {
      int x = -5;
      int abs1 = x < 0 ? 0 - x : x;
      return abs1;
    }
  )"),
            5);
}

TEST(InterpEdge, ModuloAndDivisionSigns) {
  EXPECT_EQ(runMain("int main() { return -7 / 2; }"), -3); // Truncating.
  EXPECT_EQ(runMain("int main() { return -7 % 2; }"), -1);
  EXPECT_EQ(runMain("int main() { return 7 % -2; }"), 1);
}

} // namespace
