//===- tests/MetricsTests.cpp - Metrics registry and attribution ------------===//
//
// Part of the CGCM reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Locks in the observability contracts of docs/Observability.md
/// §Metrics: exact log2-histogram semantics, registry thread safety and
/// snapshot determinism, the MetricsDiff identity / doctored / missing
/// classifications, deterministic TransferLedger ordering, and — the big
/// one — that the wall-clock attribution decomposition sums *bitwise* to
/// ExecStats::wallCycles() on every workload in both the synchronous and
/// the asynchronous execution regime.
///
//===----------------------------------------------------------------------===//

#include "support/Metrics.h"
#include "support/MetricsDiff.h"

#include "runtime/TransferLedger.h"
#include "workloads/Runner.h"

#include <gtest/gtest.h>

#include <cctype>
#include <cstdint>
#include <sstream>
#include <thread>
#include <vector>

using namespace cgcm;

namespace {

//===----------------------------------------------------------------------===//
// Histogram semantics
//===----------------------------------------------------------------------===//

TEST(MetricHistogram, BucketIndexIsBitWidth) {
  EXPECT_EQ(MetricHistogram::bucketIndex(0), 0u);
  EXPECT_EQ(MetricHistogram::bucketIndex(1), 1u);
  EXPECT_EQ(MetricHistogram::bucketIndex(2), 2u);
  EXPECT_EQ(MetricHistogram::bucketIndex(3), 2u);
  EXPECT_EQ(MetricHistogram::bucketIndex(4), 3u);
  EXPECT_EQ(MetricHistogram::bucketIndex(7), 3u);
  EXPECT_EQ(MetricHistogram::bucketIndex(8), 4u);
  EXPECT_EQ(MetricHistogram::bucketIndex(UINT64_MAX), 64u);
}

TEST(MetricHistogram, BucketUpperBoundsAreInclusivePowersMinusOne) {
  EXPECT_EQ(MetricHistogram::bucketUpperBound(0), 0u);
  EXPECT_EQ(MetricHistogram::bucketUpperBound(1), 1u);
  EXPECT_EQ(MetricHistogram::bucketUpperBound(2), 3u);
  EXPECT_EQ(MetricHistogram::bucketUpperBound(3), 7u);
  EXPECT_EQ(MetricHistogram::bucketUpperBound(10), 1023u);
  EXPECT_EQ(MetricHistogram::bucketUpperBound(64), UINT64_MAX);
  // Every value lands in the bucket whose bound covers it.
  for (uint64_t V : {uint64_t(0), uint64_t(1), uint64_t(5), uint64_t(1000),
                     uint64_t(1) << 40, UINT64_MAX}) {
    unsigned I = MetricHistogram::bucketIndex(V);
    EXPECT_LE(V, MetricHistogram::bucketUpperBound(I)) << V;
    if (I > 0)
      EXPECT_GT(V, MetricHistogram::bucketUpperBound(I - 1)) << V;
  }
}

TEST(MetricHistogram, RecordAndPercentilesExact) {
  MetricHistogram H;
  EXPECT_EQ(H.count(), 0u);
  EXPECT_EQ(H.min(), 0u); // Empty histograms report 0, not UINT64_MAX.
  EXPECT_EQ(H.max(), 0u);
  EXPECT_EQ(H.percentile(0.5), 0u);

  for (uint64_t V : {0, 1, 2, 3, 4})
    H.record(V);

  EXPECT_EQ(H.count(), 5u);
  EXPECT_EQ(H.sum(), 10u);
  EXPECT_EQ(H.min(), 0u);
  EXPECT_EQ(H.max(), 4u);
  // Buckets: [0]->{0}, [1]->{1}, [2]->{2,3}, [3]->{4}.
  EXPECT_EQ(H.bucketCount(0), 1u);
  EXPECT_EQ(H.bucketCount(1), 1u);
  EXPECT_EQ(H.bucketCount(2), 2u);
  EXPECT_EQ(H.bucketCount(3), 1u);
  EXPECT_EQ(H.bucketCount(4), 0u);
  // p50: rank ceil(.5*5)=3, cumulative hits 3 at bucket 2 -> bound 3.
  EXPECT_EQ(H.percentile(0.50), 3u);
  // p90/p99/p100: rank 5, reached at bucket 3 -> bound 7.
  EXPECT_EQ(H.percentile(0.90), 7u);
  EXPECT_EQ(H.percentile(0.99), 7u);
  EXPECT_EQ(H.percentile(1.00), 7u);

  H.reset();
  EXPECT_EQ(H.count(), 0u);
  EXPECT_EQ(H.sum(), 0u);
  EXPECT_EQ(H.min(), 0u);
  EXPECT_EQ(H.max(), 0u);
}

TEST(MetricHistogram, SingleValue) {
  MetricHistogram H;
  H.record(10);
  EXPECT_EQ(H.min(), 10u);
  EXPECT_EQ(H.max(), 10u);
  EXPECT_EQ(H.sum(), 10u);
  // 10 lands in bucket 4 ([8,15]); every percentile reports its bound.
  EXPECT_EQ(H.percentile(0.50), 15u);
  EXPECT_EQ(H.percentile(0.99), 15u);
}

//===----------------------------------------------------------------------===//
// Registry
//===----------------------------------------------------------------------===//

TEST(MetricsRegistry, InstrumentsAreStableAndResettable) {
  MetricsRegistry &R = MetricsRegistry::get();
  R.reset();
  MetricCounter &C = R.counter("test.registry.counter");
  C.inc(3);
  // Same name -> same instrument (cached references stay valid).
  EXPECT_EQ(&R.counter("test.registry.counter"), &C);
  EXPECT_EQ(C.value(), 3u);
  R.gauge("test.registry.gauge").set(2.5);
  R.gauge("test.registry.gauge").add(0.5);
  EXPECT_EQ(R.gauge("test.registry.gauge").value(), 3.0);
  R.reset();
  // reset() zeroes but never removes: the reference is still live.
  EXPECT_EQ(C.value(), 0u);
  EXPECT_EQ(R.gauge("test.registry.gauge").value(), 0.0);
}

TEST(MetricsRegistry, ConcurrentWritersLoseNoUpdates) {
  MetricsRegistry &R = MetricsRegistry::get();
  R.reset();
  constexpr unsigned NumThreads = 8;
  constexpr unsigned PerThread = 10000;
  std::vector<std::thread> Threads;
  for (unsigned T = 0; T < NumThreads; ++T)
    Threads.emplace_back([&R] {
      // Lookup *and* update race across all threads.
      MetricCounter &C = R.counter("test.mt.counter");
      MetricHistogram &H = R.histogram("test.mt.hist");
      for (unsigned I = 0; I < PerThread; ++I) {
        C.inc();
        H.record(I);
      }
    });
  for (std::thread &T : Threads)
    T.join();
  EXPECT_EQ(R.counter("test.mt.counter").value(), NumThreads * PerThread);
  MetricHistogram &H = R.histogram("test.mt.hist");
  EXPECT_EQ(H.count(), NumThreads * PerThread);
  EXPECT_EQ(H.min(), 0u);
  EXPECT_EQ(H.max(), PerThread - 1);
  R.reset();
}

TEST(MetricsRegistry, SnapshotIsSortedAndDeterministic) {
  MetricsRegistry &R = MetricsRegistry::get();
  R.reset();
  R.counter("test.snap.b").inc(2);
  R.counter("test.snap.a").inc(1);
  R.histogram("test.snap.h").record(6);
  MetricsSnapshot S1 = R.snapshot();
  MetricsSnapshot S2 = R.snapshot();

  // Name-sorted sections.
  for (size_t I = 1; I < S1.Counters.size(); ++I)
    EXPECT_LT(S1.Counters[I - 1].Name, S1.Counters[I].Name);
  for (size_t I = 1; I < S1.Histograms.size(); ++I)
    EXPECT_LT(S1.Histograms[I - 1].Name, S1.Histograms[I].Name);

  // Two snapshots of a quiescent registry render identically.
  std::ostringstream O1, O2;
  R.writeJson(O1);
  R.writeJson(O2);
  EXPECT_EQ(O1.str(), O2.str());
  ASSERT_EQ(S1.Counters.size(), S2.Counters.size());

  // Only non-empty buckets appear, ascending by bound.
  for (const HistogramSnapshot &HS : S1.Histograms) {
    uint64_t BucketTotal = 0;
    for (size_t I = 0; I < HS.Buckets.size(); ++I) {
      EXPECT_GT(HS.Buckets[I].Count, 0u);
      if (I > 0)
        EXPECT_LT(HS.Buckets[I - 1].Le, HS.Buckets[I].Le);
      BucketTotal += HS.Buckets[I].Count;
    }
    EXPECT_EQ(BucketTotal, HS.Count) << HS.Name;
  }
  R.reset();
}

//===----------------------------------------------------------------------===//
// MetricsDiff
//===----------------------------------------------------------------------===//

/// Renders the live registry as a cgcm-metrics-v1 document and flattens
/// it back, exercising the same path the CLI tool takes on real files.
MetricSeries seriesFromRegistry() {
  std::ostringstream OS;
  MetricsRegistry::get().writeJson(OS);
  MetricSeries S;
  std::string Err;
  EXPECT_TRUE(extractSeriesFromText(OS.str(), S, &Err)) << Err;
  return S;
}

TEST(MetricsDiff, IdenticalDocumentsPass) {
  MetricsRegistry &R = MetricsRegistry::get();
  R.reset();
  R.counter("test.diff.launches").inc(42);
  R.gauge("test.diff.stall").set(128);
  R.histogram("test.diff.lat").record(100);
  R.histogram("test.diff.lat").record(200);

  MetricSeries Base = seriesFromRegistry();
  MetricSeries Cur = seriesFromRegistry();
  ASSERT_FALSE(Base.empty());
  EXPECT_EQ(Base, Cur);

  DiffResult D = diffSeries(Base, Cur);
  EXPECT_FALSE(D.failed());
  EXPECT_EQ(D.Regressions, 0u);
  EXPECT_EQ(D.Missing, 0u);
  EXPECT_GT(D.Compared, 0u);
  R.reset();
}

TEST(MetricsDiff, DoctoredSnapshotFails) {
  MetricsRegistry &R = MetricsRegistry::get();
  R.reset();
  R.counter("test.diff.launches").inc(42);
  R.histogram("test.diff.lat").record(100);

  MetricSeries Base = seriesFromRegistry();
  MetricSeries Doctored = Base;
  // Grow one series well past the 15% default threshold.
  ASSERT_TRUE(Doctored.count("test.diff.launches"));
  Doctored["test.diff.launches"] *= 2.0;
  DiffResult D = diffSeries(Base, Doctored);
  EXPECT_TRUE(D.failed());
  EXPECT_EQ(D.Regressions, 1u);

  // Deleting a series is also a failure: lost coverage can hide
  // regressions.
  MetricSeries Shrunk = Base;
  Shrunk.erase("test.diff.launches");
  DiffResult M = diffSeries(Base, Shrunk);
  EXPECT_TRUE(M.failed());
  EXPECT_EQ(M.Missing, 1u);

  // An *extra* series is new coverage, not a failure.
  MetricSeries Grown = Base;
  Grown["test.diff.extra"] = 1.0;
  DiffResult N = diffSeries(Base, Grown);
  EXPECT_FALSE(N.failed());
  EXPECT_EQ(N.NewSeries, 1u);

  // Improvements are notes, not failures.
  MetricSeries Faster = Base;
  Faster["test.diff.launches"] = 1.0;
  DiffResult I = diffSeries(Base, Faster);
  EXPECT_FALSE(I.failed());
  EXPECT_EQ(I.Improvements, 1u);
  R.reset();
}

TEST(MetricsDiff, DeviceCountMismatchIsALostSeriesFailure) {
  // Two runs at different --devices=N carry per-device (dev<N>.) series
  // for different device sets; per-series deltas would be meaningless,
  // so the diff fails the same way a deleted series does.
  MetricSeries Base{{"dev0.bytes_htod", 100.0},
                    {"dev1.bytes_htod", 90.0},
                    {"exec.kernels", 5.0}};
  MetricSeries OneDevice{{"dev0.bytes_htod", 190.0}, {"exec.kernels", 5.0}};
  DiffResult D = diffSeries(Base, OneDevice);
  EXPECT_TRUE(D.failed());
  EXPECT_FALSE(D.DeviceMismatch.empty());

  // The mismatch is symmetric: a candidate with *more* devices than the
  // baseline fails too — extra dev series are not just "new coverage".
  MetricSeries Grown = Base;
  Grown["dev2.bytes_htod"] = 10.0;
  DiffResult G = diffSeries(Base, Grown);
  EXPECT_TRUE(G.failed());
  EXPECT_FALSE(G.DeviceMismatch.empty());

  // Same device set on both sides: no mismatch, normal comparison.
  DiffResult S = diffSeries(Base, Base);
  EXPECT_FALSE(S.failed());
  EXPECT_TRUE(S.DeviceMismatch.empty());

  // The bench-embedded metrics/ prefix participates in detection.
  MetricSeries Embedded{{"metrics/dev0.bytes_htod", 5.0}};
  MetricSeries EmbeddedTwo{{"metrics/dev0.bytes_htod", 5.0},
                           {"metrics/dev1.bytes_htod", 5.0}};
  EXPECT_FALSE(diffSeries(Embedded, Embedded).failed());
  EXPECT_TRUE(diffSeries(Embedded, EmbeddedTwo).failed());
}

TEST(MetricsDiff, NoisySeriesAndOverrides) {
  EXPECT_TRUE(isNoisySeries("runtime.site.x.map_host_ns.p50"));
  EXPECT_TRUE(isNoisySeries("pass.mem2reg.wall_us.sum"));
  EXPECT_FALSE(isNoisySeries("runtime.site.x.map_cycles.p50"));

  MetricSeries Base{{"a.cycles", 100.0}, {"b.host_ns.sum", 100.0}};
  MetricSeries Cur{{"a.cycles", 100.0}, {"b.host_ns.sum", 900.0}};
  // Host-time series are skipped by default...
  DiffResult D = diffSeries(Base, Cur);
  EXPECT_FALSE(D.failed());
  EXPECT_EQ(D.NoisySkipped, 1u);
  // ...but compared under --include-noisy.
  DiffOptions Opts;
  Opts.IncludeNoisy = true;
  EXPECT_TRUE(diffSeries(Base, Cur, Opts).failed());

  // Substring overrides widen (or tighten) per-series thresholds.
  MetricSeries Slow{{"a.cycles", 120.0}};
  MetricSeries SlowBase{{"a.cycles", 100.0}};
  EXPECT_TRUE(diffSeries(SlowBase, Slow).failed());
  DiffOptions Loose;
  Loose.Overrides.emplace_back("a.cycles", 0.5);
  EXPECT_FALSE(diffSeries(SlowBase, Slow, Loose).failed());
}

TEST(MetricsDiff, KnownRenameIsANoteNotAFailure) {
  // The PR-9 seeded rule: runtime.lookup.depth became
  // runtime.index.probes. Histograms flatten to seven suffixed series;
  // the rule is prefix-matched so all of them rename together.
  MetricSeries Base{{"runtime.lookup.depth.count", 10.0},
                    {"runtime.lookup.depth.sum", 30.0},
                    {"other.counter", 5.0}};
  MetricSeries Cur{{"runtime.index.probes.count", 12.0},
                   {"runtime.index.probes.sum", 14.0},
                   {"other.counter", 5.0}};
  DiffResult D = diffSeries(Base, Cur);
  EXPECT_FALSE(D.failed());
  EXPECT_EQ(D.Renamed, 2u);
  EXPECT_EQ(D.Missing, 0u);
  // Values are not threshold-checked across a rename (the series
  // measures something new), so the 10 -> 12 / 30 -> 14 deltas above
  // must not count as regressions or improvements.
  EXPECT_EQ(D.Regressions, 0u);

  // Without the rule the same baseline series are hard Missing failures.
  DiffOptions NoRules;
  NoRules.Renames.clear();
  DiffResult M = diffSeries(Base, Cur, NoRules);
  EXPECT_TRUE(M.failed());
  EXPECT_EQ(M.Missing, 2u);

  // A rename rule only downgrades Missing when the renamed counterpart
  // actually exists in the candidate.
  MetricSeries Gone{{"other.counter", 5.0}};
  DiffResult G = diffSeries(Base, Gone);
  EXPECT_TRUE(G.failed());
  EXPECT_EQ(G.Missing, 2u);
  EXPECT_EQ(G.Renamed, 0u);
}

TEST(MetricsDiff, RenameMatchesBenchEmbeddedPrefix) {
  // Bench documents embed their metrics under a metrics/ prefix; the
  // rename rules must match through it.
  MetricSeries Base{{"metrics/runtime.lookup.depth.p50", 3.0}};
  MetricSeries Cur{{"metrics/runtime.index.probes.p50", 4.0}};
  DiffResult D = diffSeries(Base, Cur);
  EXPECT_FALSE(D.failed());
  EXPECT_EQ(D.Renamed, 1u);

  DiffOptions Opts;
  EXPECT_EQ(Opts.renamedName("runtime.lookup.depth.p99"),
            "runtime.index.probes.p99");
  EXPECT_EQ(Opts.renamedName("metrics/runtime.lookup.depth.max"),
            "metrics/runtime.index.probes.max");
  EXPECT_EQ(Opts.renamedName("runtime.xlat.hits"), "");
}

//===----------------------------------------------------------------------===//
// TransferLedger determinism
//===----------------------------------------------------------------------===//

TEST(TransferLedger, TopNOrderIgnoresInsertionHistory) {
  // Four sites with identical byte totals; two also tie on transfer
  // count and differ only by source position.
  struct Row {
    const char *Site;
    unsigned Line, Col;
    uint64_t Bytes, Transfers;
  };
  const std::vector<Row> Rows = {
      {"heap@9:1", 9, 1, 4096, 4},
      {"heap@3:7", 3, 7, 4096, 4},
      {"heap@3:2", 3, 2, 4096, 8},
      {"global A", 0, 0, 8192, 1},
  };
  // Bytes desc, then transfers desc, then line/col asc, then name.
  const std::vector<std::string> Expected = {"global A", "heap@3:2",
                                             "heap@3:7", "heap@9:1"};

  std::vector<std::vector<size_t>> Orders = {
      {0, 1, 2, 3}, {3, 2, 1, 0}, {2, 0, 3, 1}, {1, 3, 0, 2}};
  for (const std::vector<size_t> &Order : Orders) {
    TransferLedger L;
    for (size_t I : Order) {
      const Row &R = Rows[I];
      LedgerEntry *E = L.entryFor(R.Site, SourceLoc{R.Line, R.Col});
      E->BytesHtoD = R.Bytes;
      E->TransfersHtoD = R.Transfers;
    }
    std::vector<std::string> Got;
    for (const LedgerEntry *E : L.sortedByBytes())
      Got.push_back(E->Site);
    EXPECT_EQ(Got, Expected);
  }
}

//===----------------------------------------------------------------------===//
// End-to-end: attribution decomposition is bitwise-exact
//===----------------------------------------------------------------------===//

class AttributionSuite : public ::testing::TestWithParam<Workload> {};

/// The acceptance invariant: every modeled wall cycle is attributed to
/// exactly one bucket, with no rounding slack — the decomposition uses
/// the same accumulators and association shape as the wall clock itself.
TEST_P(AttributionSuite, SumsBitwiseToWallClockSync) {
  const Workload &W = GetParam();
  WorkloadRun R = runWorkload(W, BenchConfig::CGCMOptimized);
  WallAttribution A = attributeWall(R.Stats);
  EXPECT_EQ(A.sum(), R.Stats.wallCycles()) << W.Name;
  EXPECT_EQ(A.Wall, R.Stats.wallCycles()) << W.Name;
}

TEST_P(AttributionSuite, SumsBitwiseToWallClockAsync) {
  const Workload &W = GetParam();
  RunnerOptions RO;
  RO.AsyncStreams = 4;
  WorkloadRun R = runWorkload(W, BenchConfig::CGCMOptimized, RO);
  WallAttribution A = attributeWall(R.Stats);
  EXPECT_EQ(A.sum(), R.Stats.wallCycles()) << W.Name;
  // Async runs publish per-stream lane stats for the report.
  EXPECT_EQ(A.Streams.size(), R.Stats.StreamLanes.size()) << W.Name;
}

INSTANTIATE_TEST_SUITE_P(
    AllPrograms, AttributionSuite, ::testing::ValuesIn(getWorkloads()),
    [](const ::testing::TestParamInfo<Workload> &Info) {
      std::string Name = Info.param.Name;
      for (char &C : Name)
        if (!isalnum(static_cast<unsigned char>(C)))
          C = '_';
      return Name;
    });

} // namespace
