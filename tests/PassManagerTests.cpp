//===- tests/PassManagerTests.cpp - Pass manager and analysis caching -------===//
//
// Part of the CGCM reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The pass-manager architecture (docs/PassManager.md): analysis caching
/// and invalidation, preservation intersection, the stale-analysis
/// fingerprint detector (including a deliberately buggy pass that lies
/// about preservation), the `--passes=` pipeline parser, and the two
/// global guarantees — the declarative default pipeline is bit-identical
/// to the legacy hardcoded schedule on all 24 workloads, and cached
/// analyses are constructed strictly fewer times than the convergence
/// loops used to rebuild them.
///
//===----------------------------------------------------------------------===//

#include "exec/Machine.h"
#include "frontend/IRGen.h"
#include "ir/IRBuilder.h"
#include "ir/Verifier.h"
#include "pass/Analyses.h"
#include "pass/AnalysisManager.h"
#include "pass/PassManager.h"
#include "pass/StandardInstrumentations.h"
#include "transform/Mem2Reg.h"
#include "transform/Pipeline.h"
#include "workloads/Workloads.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <sstream>

using namespace cgcm;

namespace {

/// A program with control flow (so the dominator tree is non-trivial),
/// two defined functions, and a deterministic output.
const char *BranchyProgram = R"(
  int helper(int x) {
    int y = x + 1;
    if (y > 3)
      y = y * 2;
    return y;
  }
  int main() {
    print_i64(helper(4));
    return 0;
  }
)";

Function *firstDefinedFunction(Module &M) {
  for (const auto &F : M.functions())
    if (!F->isDeclaration())
      return F.get();
  return nullptr;
}

//===----------------------------------------------------------------------===//
// Analysis caching and invalidation
//===----------------------------------------------------------------------===//

TEST(AnalysisManagerTest, FunctionResultsAreCachedAndCounted) {
  auto M = compileMiniC(BranchyProgram, "am");
  ModuleAnalysisManager AM;
  FunctionAnalysisManager &FAM = AM.getFunctionAnalysisManager();
  Function *F = firstDefinedFunction(*M);
  ASSERT_NE(F, nullptr);

  DominatorTree &First = FAM.getResult<DominatorTreeAnalysis>(*F);
  DominatorTree &Second = FAM.getResult<DominatorTreeAnalysis>(*F);
  EXPECT_EQ(&First, &Second) << "hit must return the cached object";

  EXPECT_EQ(AM.getConstructionCount("dominators"), 1u);
  EXPECT_EQ(AM.getHitCount("dominators"), 1u);
}

TEST(AnalysisManagerTest, LoopAnalysisSeedsDominators) {
  auto M = compileMiniC(BranchyProgram, "am");
  ModuleAnalysisManager AM;
  FunctionAnalysisManager &FAM = AM.getFunctionAnalysisManager();
  Function *F = firstDefinedFunction(*M);
  ASSERT_NE(F, nullptr);

  FAM.getResult<LoopAnalysis>(*F);
  // Computing loops computed (and cached) the dominator tree too.
  EXPECT_TRUE(FAM.isCached<DominatorTreeAnalysis>(*F));
  FAM.getResult<DominatorTreeAnalysis>(*F);
  EXPECT_EQ(AM.getConstructionCount("dominators"), 1u);
}

TEST(AnalysisManagerTest, InvalidateFunctionDropsItsResults) {
  auto M = compileMiniC(BranchyProgram, "am");
  ModuleAnalysisManager AM;
  FunctionAnalysisManager &FAM = AM.getFunctionAnalysisManager();
  Function *F = firstDefinedFunction(*M);
  ASSERT_NE(F, nullptr);

  FAM.getResult<LoopAnalysis>(*F);
  FAM.invalidate(*F);
  EXPECT_FALSE(FAM.isCached<DominatorTreeAnalysis>(*F));
  EXPECT_FALSE(FAM.isCached<LoopAnalysis>(*F));
  FAM.getResult<DominatorTreeAnalysis>(*F);
  EXPECT_EQ(AM.getConstructionCount("dominators"), 2u);
}

TEST(AnalysisManagerTest, ModuleResultsAreCachedAndInvalidated) {
  auto M = compileMiniC(BranchyProgram, "am");
  ModuleAnalysisManager AM;

  CallGraph &First = AM.getResult<CallGraphAnalysis>(*M);
  CallGraph &Second = AM.getResult<CallGraphAnalysis>(*M);
  EXPECT_EQ(&First, &Second);
  EXPECT_EQ(AM.getConstructionCount("callgraph"), 1u);
  EXPECT_EQ(AM.getHitCount("callgraph"), 1u);

  AM.invalidateResult<CallGraphAnalysis>();
  EXPECT_FALSE(AM.isCached<CallGraphAnalysis>());
  AM.getResult<CallGraphAnalysis>(*M);
  EXPECT_EQ(AM.getConstructionCount("callgraph"), 2u);
}

TEST(PreservedAnalysesTest, IntersectionSemantics) {
  PreservedAnalyses All = PreservedAnalyses::all();
  EXPECT_TRUE(All.areAllPreserved());
  EXPECT_TRUE(All.isPreserved<DominatorTreeAnalysis>());

  PreservedAnalyses None = PreservedAnalyses::none();
  EXPECT_FALSE(None.isPreserved<DominatorTreeAnalysis>());

  PreservedAnalyses OnlyDT = PreservedAnalyses::none();
  OnlyDT.preserve<DominatorTreeAnalysis>();
  EXPECT_TRUE(OnlyDT.isPreserved<DominatorTreeAnalysis>());
  EXPECT_FALSE(OnlyDT.isPreserved<LoopAnalysis>());

  // all ∩ X = X; X ∩ none = none.
  PreservedAnalyses A = PreservedAnalyses::all();
  A.intersect(OnlyDT);
  EXPECT_TRUE(A.isPreserved<DominatorTreeAnalysis>());
  EXPECT_FALSE(A.isPreserved<LoopAnalysis>());
  A.intersect(PreservedAnalyses::none());
  EXPECT_FALSE(A.isPreserved<DominatorTreeAnalysis>());
}

TEST(AnalysisManagerTest, PreservationAwareInvalidation) {
  auto M = compileMiniC(BranchyProgram, "am");
  ModuleAnalysisManager AM;
  FunctionAnalysisManager &FAM = AM.getFunctionAnalysisManager();
  Function *F = firstDefinedFunction(*M);
  ASSERT_NE(F, nullptr);

  FAM.getResult<LoopAnalysis>(*F);
  AM.getResult<CallGraphAnalysis>(*M);

  PreservedAnalyses PA = PreservedAnalyses::none();
  PA.preserve<DominatorTreeAnalysis>();
  AM.invalidate(PA);

  EXPECT_TRUE(FAM.isCached<DominatorTreeAnalysis>(*F));
  EXPECT_FALSE(FAM.isCached<LoopAnalysis>(*F));
  EXPECT_FALSE(AM.isCached<CallGraphAnalysis>());
}

//===----------------------------------------------------------------------===//
// Pass manager mechanics
//===----------------------------------------------------------------------===//

/// Reports "changed" for its first \p ChangesToReport runs, then settles.
class CountingPass : public ModulePass {
public:
  CountingPass(unsigned ChangesToReport, unsigned &Runs)
      : Remaining(ChangesToReport), Runs(Runs) {}
  const char *name() const override { return "test-counter"; }
  PassExecResult run(Module &, ModuleAnalysisManager &) override {
    ++Runs;
    PassExecResult R;
    R.PA = PreservedAnalyses::all();
    if (Remaining) {
      --Remaining;
      R.Changed = true;
    }
    return R;
  }

private:
  unsigned Remaining;
  unsigned &Runs;
};

TEST(PassManagerTest, FixpointRerunsUntilQuiescent) {
  auto M = compileMiniC(BranchyProgram, "pm");
  ModuleAnalysisManager AM;

  unsigned Runs = 0;
  PassManager Inner;
  Inner.addPass(std::make_unique<CountingPass>(2, Runs));
  FixpointPass FP(std::move(Inner));
  PassExecResult R = FP.run(*M, AM);

  // Two changing sweeps plus the quiescent one that stops the loop.
  EXPECT_EQ(Runs, 3u);
  EXPECT_EQ(FP.getLastIterationCount(), 3u);
  EXPECT_TRUE(R.Changed);
}

TEST(PassManagerTest, InstrumentationFiresAroundEveryPass) {
  auto M = compileMiniC(BranchyProgram, "pm");
  ModuleAnalysisManager AM;
  PassInstrumentation PI;
  std::vector<std::string> Events;
  PI.registerBeforePass([&](const std::string &P, Module &) {
    Events.push_back("before:" + P);
  });
  PI.registerAfterPass([&](const std::string &P, Module &, bool) {
    Events.push_back("after:" + P);
  });
  AM.setInstrumentation(&PI);

  unsigned Runs = 0;
  PassManager Inner;
  Inner.addPass(std::make_unique<CountingPass>(0, Runs));
  PassManager PM;
  PM.addPass(std::make_unique<FixpointPass>(std::move(Inner)));
  PM.run(*M, AM);

  // The fixpoint group fires for itself and for its contents, LIFO.
  std::vector<std::string> Expected = {
      "before:fixpoint", "before:test-counter", "after:test-counter",
      "after:fixpoint"};
  EXPECT_EQ(Events, Expected);
}

//===----------------------------------------------------------------------===//
// Stale-analysis detection
//===----------------------------------------------------------------------===//

/// Deliberately buggy: mutates the CFG of every defined function but
/// claims it preserved everything, leaving stale dominator trees in the
/// cache.
class LyingCFGMutationPass : public ModulePass {
public:
  const char *name() const override { return "test-liar"; }
  PassExecResult run(Module &M, ModuleAnalysisManager &AM) override {
    FunctionAnalysisManager &FAM = AM.getFunctionAnalysisManager();
    for (const auto &F : M.functions()) {
      if (F->isDeclaration())
        continue;
      FAM.getResult<DominatorTreeAnalysis>(*F); // Populate the cache.
      BasicBlock *BB = F->createBlock("sneaky");
      IRBuilder B(M);
      B.setInsertPoint(BB);
      B.createRet();
    }
    return {PreservedAnalyses::all(), true}; // The lie.
  }
};

/// Consumes the dominator tree of every defined function.
class DominatorConsumerPass : public ModulePass {
public:
  const char *name() const override { return "test-consumer"; }
  PassExecResult run(Module &M, ModuleAnalysisManager &AM) override {
    FunctionAnalysisManager &FAM = AM.getFunctionAnalysisManager();
    for (const auto &F : M.functions())
      if (!F->isDeclaration())
        FAM.getResult<DominatorTreeAnalysis>(*F);
    return {PreservedAnalyses::all(), false};
  }
};

TEST(StaleAnalysisDetectorTest, BuggyPreservationIsFatal) {
  auto M = compileMiniC(BranchyProgram, "stale");
  ModuleAnalysisManager AM;
  AM.setStaleCheckingEnabled(true);

  PassManager PM;
  PM.addPass(std::make_unique<LyingCFGMutationPass>());
  PM.addPass(std::make_unique<DominatorConsumerPass>());
  EXPECT_DEATH(PM.run(*M, AM), "stale analysis");
}

TEST(StaleAnalysisDetectorTest, HonestInvalidationIsClean) {
  auto M = compileMiniC(BranchyProgram, "fresh");
  ModuleAnalysisManager AM;
  AM.setStaleCheckingEnabled(true);
  FunctionAnalysisManager &FAM = AM.getFunctionAnalysisManager();
  Function *F = firstDefinedFunction(*M);
  ASSERT_NE(F, nullptr);

  FAM.getResult<DominatorTreeAnalysis>(*F);
  BasicBlock *BB = F->createBlock("declared");
  IRBuilder B(*M);
  B.setInsertPoint(BB);
  B.createRet();
  FAM.invalidate(*F); // The honest version of the pass above.
  FAM.getResult<DominatorTreeAnalysis>(*F);
  EXPECT_EQ(AM.getConstructionCount("dominators"), 2u);
}

TEST(StaleAnalysisDetectorTest, DisabledCheckingToleratesTheLie) {
  // Fingerprints are always recorded but only verified when enabled, so
  // production runs pay a lookup, not a recomputation.
  auto M = compileMiniC(BranchyProgram, "stale-off");
  ModuleAnalysisManager AM;
  PassManager PM;
  PM.addPass(std::make_unique<LyingCFGMutationPass>());
  PM.addPass(std::make_unique<DominatorConsumerPass>());
  PM.run(*M, AM); // No death without stale checking.
  EXPECT_GT(AM.getHitCount("dominators"), 0u);
}

//===----------------------------------------------------------------------===//
// Pipeline parser
//===----------------------------------------------------------------------===//

std::vector<std::string> parseNames(const std::string &Text) {
  PassManager PM;
  PipelineResult R;
  std::string Err;
  EXPECT_TRUE(parsePassPipeline(PM, Text, R, nullptr, &Err)) << Err;
  return PM.getPassNames();
}

TEST(PipelineParserTest, DefaultTextParses) {
  PipelineOptions Opts;
  std::string Text = buildDefaultPipelineText(Opts);
  EXPECT_EQ(Text, "mem2reg,doall,comm,fixpoint(glue,alloca-promote,"
                  "map-promote),simplify,verify,verify-par");
  std::vector<std::string> Names = parseNames(Text);
  std::vector<std::string> Expected = {"mem2reg",  "doall",  "comm",
                                       "fixpoint", "simplify", "verify",
                                       "verify-par"};
  EXPECT_EQ(Names, Expected);
}

TEST(PipelineParserTest, DefaultTextFollowsOptions) {
  PipelineOptions Opts;
  Opts.Manage = false;
  EXPECT_EQ(buildDefaultPipelineText(Opts),
            "mem2reg,doall,verify,verify-par");

  Opts = PipelineOptions();
  Opts.Optimize = false;
  Opts.VerifyParallelization = false;
  EXPECT_EQ(buildDefaultPipelineText(Opts), "mem2reg,doall,comm,verify");

  Opts = PipelineOptions();
  Opts.EnableGlueKernels = false;
  EXPECT_EQ(buildDefaultPipelineText(Opts),
            "mem2reg,doall,comm,fixpoint(alloca-promote,map-promote),"
            "simplify,verify,verify-par");
}

TEST(PipelineParserTest, AcceptsWhitespaceAndNesting) {
  EXPECT_EQ(parseNames("  mem2reg ,  doall  "),
            (std::vector<std::string>{"mem2reg", "doall"}));
  EXPECT_EQ(parseNames("fixpoint( fixpoint( simplify ) )"),
            (std::vector<std::string>{"fixpoint"}));
}

TEST(PipelineParserTest, RejectsMalformedText) {
  for (const char *Bad :
       {"", "nosuch-pass", "mem2reg,,comm", "mem2reg,", "fixpoint",
        "fixpoint(", "fixpoint()", "fixpoint(mem2reg", "mem2reg)",
        "fixpoint(nosuch)"}) {
    PassManager PM;
    PipelineResult R;
    std::string Err;
    EXPECT_FALSE(parsePassPipeline(PM, Bad, R, nullptr, &Err))
        << "accepted: " << Bad;
    EXPECT_FALSE(Err.empty()) << Bad;
  }
}

//===----------------------------------------------------------------------===//
// Instrumentation plumbing through runPassPipeline
//===----------------------------------------------------------------------===//

TEST(PipelineInstrumentationTest, TimePassesReportsPassesAndCaches) {
  auto M = compileMiniC(BranchyProgram, "tp");
  std::ostringstream OS;
  PipelineRunOptions RunOpts;
  RunOpts.TimePasses = true;
  RunOpts.TimePassesStream = &OS;
  runPassPipeline(*M, buildDefaultPipelineText(PipelineOptions()), RunOpts);

  std::string Report = OS.str();
  EXPECT_NE(Report.find("-- time-passes --"), std::string::npos);
  EXPECT_NE(Report.find("mem2reg"), std::string::npos);
  EXPECT_NE(Report.find("fixpoint"), std::string::npos);
  EXPECT_NE(Report.find("-- analysis cache --"), std::string::npos);
  EXPECT_NE(Report.find("callgraph"), std::string::npos);
}

TEST(PipelineInstrumentationTest, PrintAfterDumpsNamedStage) {
  auto M = compileMiniC(BranchyProgram, "pa");
  std::ostringstream OS;
  PipelineRunOptions RunOpts;
  RunOpts.PrintAfter = "comm";
  RunOpts.PrintAfterStream = &OS;
  runPassPipeline(*M, "mem2reg,comm,verify", RunOpts);
  EXPECT_NE(OS.str().find("; IR after pass 'comm'"), std::string::npos);
}

TEST(PipelineInstrumentationTest, VerifyEachPassesOnTheDefaultPipeline) {
  auto M = compileMiniC(BranchyProgram, "ve");
  PipelineRunOptions RunOpts;
  RunOpts.VerifyEach = true;
  runPassPipeline(*M, buildDefaultPipelineText(PipelineOptions()), RunOpts);
  std::string Err;
  EXPECT_TRUE(verifyModule(*M, &Err)) << Err;
}

//===----------------------------------------------------------------------===//
// Workload-level guarantees
//===----------------------------------------------------------------------===//

class PassManagerWorkloads : public ::testing::TestWithParam<Workload> {};

struct ExecutedRun {
  std::string IR;
  std::string Output;
  ExecStats Stats;
};

ExecutedRun executeManaged(Module &M) {
  ExecutedRun E;
  E.IR = M.getString();
  Machine Mach;
  Mach.setLaunchPolicy(LaunchPolicy::Managed);
  Mach.loadModule(M);
  Mach.run();
  E.Output = Mach.getOutput();
  E.Stats = Mach.getStats();
  return E;
}

/// The paper schedule spelled with the legacy free functions: glue →
/// alloca promotion → map promotion iterated to convergence (§5.3),
/// every round rebuilding every analysis from scratch. The pass-manager
/// pipeline must produce bit-identical IR out of its caches.
void runLegacySchedule(Module &M) {
  promoteAllocasToRegisters(M);
  parallelizeDOALLLoops(M);
  insertCommunicationManagement(M);
  for (int I = 0; I != 32; ++I) {
    GlueStats G = createGlueKernels(M);
    AllocaPromotionStats A = promoteAllocasUpCallGraph(M);
    PromotionStats P = promoteMaps(M);
    if (G.GlueKernelsCreated == 0 && A.AllocasHoisted == 0 &&
        P.LoopHoists + P.FunctionHoists + P.UnmapsDeleted == 0)
      break;
  }
  simplifyModule(M);
  std::string Err;
  ASSERT_TRUE(verifyModule(M, &Err)) << Err;
}

TEST_P(PassManagerWorkloads, DefaultPipelineMatchesLegacySchedule) {
  const Workload &W = GetParam();

  auto Legacy = compileMiniC(W.Source, W.Name);
  runLegacySchedule(*Legacy);

  auto Managed = compileMiniC(W.Source, W.Name);
  runCGCMPipeline(*Managed);

  ExecutedRun L = executeManaged(*Legacy);
  ExecutedRun P = executeManaged(*Managed);

  EXPECT_EQ(P.IR, L.IR) << W.Name << ": pass-manager pipeline diverged";
  EXPECT_EQ(P.Output, L.Output) << W.Name;
  EXPECT_EQ(P.Stats.BytesHtoD, L.Stats.BytesHtoD) << W.Name;
  EXPECT_EQ(P.Stats.BytesDtoH, L.Stats.BytesDtoH) << W.Name;
  EXPECT_EQ(P.Stats.KernelLaunches, L.Stats.KernelLaunches) << W.Name;
  EXPECT_EQ(P.Stats.totalCycles(), L.Stats.totalCycles()) << W.Name;
}

TEST_P(PassManagerWorkloads, CachingBeatsPerIterationRebuilds) {
  // Satellite of the refactor: the convergence loops used to rebuild the
  // call graph once per iteration; with the analysis manager it is
  // constructed strictly fewer times than there were iterations.
  const Workload &W = GetParam();
  auto M = compileMiniC(W.Source, W.Name);

  ModuleAnalysisManager AM;
  PipelineRunOptions RunOpts;
  RunOpts.AM = &AM;
  PipelineResult R =
      runPassPipeline(*M, buildDefaultPipelineText(PipelineOptions()),
                      RunOpts);

  unsigned LegacyBuilds = R.AllocaPromo.Iterations + R.MapPromo.Iterations;
  ASSERT_GE(LegacyBuilds, 2u) << W.Name;
  EXPECT_LT(AM.getConstructionCount("callgraph"), LegacyBuilds) << W.Name;
  EXPECT_GT(AM.getHitCount("callgraph"), 0u) << W.Name;
}

INSTANTIATE_TEST_SUITE_P(AllPrograms, PassManagerWorkloads,
                         ::testing::ValuesIn(getWorkloads()),
                         [](const ::testing::TestParamInfo<Workload> &Info) {
                           std::string N = Info.param.Name;
                           for (char &C : N)
                             if (C == '-')
                               C = '_';
                           return N;
                         });

//===----------------------------------------------------------------------===//
// Randomized pipeline property test
//===----------------------------------------------------------------------===//

/// Generates a random legal pipeline: mem2reg first (the transforms
/// assume SSA form), then a random subset of the remaining passes in
/// random order, with an optional fixpoint(...) wrapped around a
/// contiguous run of the convergent optimization passes.
std::string randomPipeline(std::mt19937 &Rng) {
  std::vector<std::string> Pool = {"doall",       "comm",
                                   "glue",        "alloca-promote",
                                   "map-promote", "simplify",
                                   "verify"};
  std::shuffle(Pool.begin(), Pool.end(), Rng);
  size_t Take = std::uniform_int_distribution<size_t>(0, Pool.size())(Rng);
  std::vector<std::string> Seq = {"mem2reg"};
  Seq.insert(Seq.end(), Pool.begin(), Pool.begin() + Take);

  auto Fixpointable = [](const std::string &P) {
    return P == "glue" || P == "alloca-promote" || P == "map-promote" ||
           P == "simplify";
  };
  std::vector<size_t> Starts;
  for (size_t I = 1; I < Seq.size(); ++I)
    if (Fixpointable(Seq[I]))
      Starts.push_back(I);
  if (!Starts.empty() && Rng() % 2 == 0) {
    size_t Begin =
        Starts[std::uniform_int_distribution<size_t>(0, Starts.size() - 1)(
            Rng)];
    size_t End = Begin + 1;
    while (End < Seq.size() && Fixpointable(Seq[End]) && Rng() % 2 == 0)
      ++End;
    std::string Group;
    for (size_t I = Begin; I != End; ++I)
      Group += (I == Begin ? "" : ",") + Seq[I];
    Seq.erase(Seq.begin() + Begin, Seq.begin() + End);
    Seq.insert(Seq.begin() + Begin, "fixpoint(" + Group + ")");
  }

  std::string Text;
  for (size_t I = 0; I != Seq.size(); ++I)
    Text += (I ? "," : "") + Seq[I];
  return Text;
}

/// Managed execution only makes sense when management ran, after any
/// parallelization (kernels created later would launch unmanaged).
bool executableUnderManaged(const std::string &Text) {
  size_t Comm = Text.find("comm");
  if (Comm == std::string::npos)
    return false;
  size_t Doall = Text.find("doall");
  return Doall == std::string::npos || Doall < Comm;
}

class RandomPipelines : public ::testing::TestWithParam<Workload> {};

TEST_P(RandomPipelines, LegalPipelinesVerifyAndPreserveOutput) {
  const Workload &W = GetParam();

  auto Ref = compileMiniC(W.Source, W.Name);
  runCGCMPipeline(*Ref);
  std::string RefOutput = executeManaged(*Ref).Output;
  ASSERT_FALSE(RefOutput.empty()) << W.Name << " printed nothing";

  // Distinct deterministic seed per workload; 9 pipelines x 6 workloads
  // = 54 randomized schedules suite-wide.
  std::mt19937 Rng(1000u + static_cast<unsigned>(W.Name.size()) * 31u +
                   static_cast<unsigned>(W.Name[0]));
  for (int Trial = 0; Trial != 9; ++Trial) {
    std::string Text = randomPipeline(Rng);
    SCOPED_TRACE(W.Name + " --passes=" + Text);

    auto M = compileMiniC(W.Source, W.Name);
    PipelineRunOptions RunOpts;
    RunOpts.VerifyEach = true; // Stale detection on, verify every pass.
    runPassPipeline(*M, Text, RunOpts);
    std::string Err;
    ASSERT_TRUE(verifyModule(*M, &Err)) << Err;

    // Any pipeline that manages communication after parallelizing must
    // compute the same answer as the fully optimized reference.
    if (executableUnderManaged(Text))
      EXPECT_EQ(executeManaged(*M).Output, RefOutput);
  }
}

std::vector<Workload> propertyWorkloads() {
  const std::vector<Workload> &All = getWorkloads();
  return {All.begin(), All.begin() + std::min<size_t>(6, All.size())};
}

INSTANTIATE_TEST_SUITE_P(SixPrograms, RandomPipelines,
                         ::testing::ValuesIn(propertyWorkloads()),
                         [](const ::testing::TestParamInfo<Workload> &Info) {
                           std::string N = Info.param.Name;
                           for (char &C : N)
                             if (C == '-')
                               C = '_';
                           return N;
                         });

} // namespace
