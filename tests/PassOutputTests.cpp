//===- tests/PassOutputTests.cpp - Golden-text checks on pass output -----------===//
//
// Part of the CGCM reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// FileCheck-style tests: run a pass, print the IR, and assert the
/// transformation left the expected textual shape — call placement
/// relative to loops, kernel signatures, launch configuration — plus
/// regression tests for executor policy interactions.
///
//===----------------------------------------------------------------------===//

#include "exec/Machine.h"
#include "frontend/IRGen.h"
#include "transform/Pipeline.h"

#include <gtest/gtest.h>

using namespace cgcm;

namespace {

/// Asserts each needle occurs in order within \p Haystack (a CHECK line
/// sequence).
void expectInOrder(const std::string &Haystack,
                   std::initializer_list<const char *> Needles) {
  size_t Pos = 0;
  for (const char *N : Needles) {
    size_t Found = Haystack.find(N, Pos);
    ASSERT_NE(Found, std::string::npos)
        << "expected '" << N << "' after offset " << Pos << " in:\n"
        << Haystack;
    Pos = Found + 1;
  }
}

std::string pipelineIR(const char *Src, bool Optimize) {
  auto M = compileMiniC(Src, "golden");
  PipelineOptions Opts;
  Opts.Optimize = Optimize;
  runCGCMPipeline(*M, Opts);
  return M->getString();
}

const char *TimeLoop = R"(
  double a[32];
  int main() {
    int t; int i;
    for (i = 0; i < 32; i++) a[i] = i;
    for (t = 0; t < 5; t++) {
      for (i = 0; i < 32; i++) a[i] = a[i] * 0.5;
    }
    double s = 0.0;
    for (i = 0; i < 32; i++) s += a[i];
    print_f64(s);
    return 0;
  }
)";

TEST(GoldenIR, ManagementWrapsEveryLaunch) {
  std::string IR = pipelineIR(TimeLoop, /*Optimize=*/false);
  // Listing 3 shape inside the time loop: map, launch, unmap, release.
  expectInOrder(IR, {"for.cond", "call @cgcm_map", "launch @main_k1",
                     "call @cgcm_unmap", "call @cgcm_release"});
  // declareGlobal precedes everything in main.
  expectInOrder(IR, {"define i32 @main", "call @cgcm_declare_global",
                     "launch @main_k0"});
}

TEST(GoldenIR, PromotionHoistsAboveTimeLoopAndDeletesUnmaps) {
  std::string IR = pipelineIR(TimeLoop, /*Optimize=*/true);
  // Listing 4 shape: a map in the preheader, the in-loop map retained,
  // the in-loop unmap gone, unmap+release in the exit.
  size_t Launch = IR.find("launch @main_k1");
  ASSERT_NE(Launch, std::string::npos);
  size_t LoopUnmap = IR.find("call @cgcm_unmap", Launch);
  size_t LoopEnd = IR.find("for.end", Launch);
  ASSERT_NE(LoopEnd, std::string::npos);
  // No unmap between the launch and the loop end.
  EXPECT_TRUE(LoopUnmap == std::string::npos || LoopUnmap > LoopEnd)
      << IR.substr(Launch, LoopEnd - Launch);
}

TEST(GoldenIR, DOALLKernelHasGridStrideShape) {
  std::string IR = [] {
    auto M = compileMiniC(TimeLoop, "k");
    PipelineOptions Opts;
    Opts.Manage = false;
    Opts.Optimize = false;
    runCGCMPipeline(*M, Opts);
    return M->getString();
  }();
  // The kernel computes its start index from __tid and strides by
  // __ntid; the caller launches with block size 128. The DOALL proof
  // also marks the kernel shardable across a device pool.
  expectInOrder(IR, {"define kernel shardable(", ") void @main_k0",
                     "call @__tid", "call @__ntid", "phi i32"});
  expectInOrder(IR, {"define i32 @main", "<<<", ", 128>>>"});
}

TEST(GoldenIR, GlueKernelIsMarkedAndSingleThreaded) {
  const char *Src = R"(
    double a[32];
    double pivbuf[2];
    int main() {
      int t; int i;
      for (i = 0; i < 32; i++) a[i] = i + 1.0;
      for (t = 0; t < 6; t++) {
        pivbuf[0] = 1.0 / a[1];
        for (i = 0; i < 32; i++) a[i] = a[i] * pivbuf[0];
      }
      print_f64(a[5]);
      return 0;
    }
  )";
  std::string IR = pipelineIR(Src, /*Optimize=*/true);
  expectInOrder(IR, {"define glue_kernel void @glue_k0"});
  // Launched <<<1, 1>>>.
  expectInOrder(IR, {"launch @glue_k0<<<1, 1>>>"});
}

//===----------------------------------------------------------------------===//
// Executor policy regressions
//===----------------------------------------------------------------------===//

TEST(PolicyRegression, SequentialBaselineIsUnmanagedEmulation) {
  // The sequential baseline contract (what cgcmc --policy=seq and the
  // workload runner use): parallelize if you like, but do NOT manage —
  // CpuEmulation runs kernels against host memory, so a managed module
  // (device-pointer arguments, device global instances) is a different
  // program under this policy and is not a supported combination.
  auto Par = compileMiniC(TimeLoop, "emu");
  PipelineOptions Opts;
  Opts.Manage = false;
  Opts.Optimize = false;
  runCGCMPipeline(*Par, Opts); // Parallelized, unmanaged.
  Machine Emu;
  Emu.setLaunchPolicy(LaunchPolicy::CpuEmulation);
  Emu.loadModule(*Par);
  Emu.run();

  auto M2 = compileMiniC(TimeLoop, "ref");
  Machine Ref;
  Ref.setLaunchPolicy(LaunchPolicy::CpuEmulation);
  Ref.loadModule(*M2);
  Ref.run();
  EXPECT_EQ(Emu.getOutput(), Ref.getOutput());
  // And the emulated run charges no GPU or communication time at all.
  EXPECT_EQ(Emu.getStats().GpuOps, 0u);
  EXPECT_EQ(Emu.getStats().BytesHtoD, 0u);
  EXPECT_DOUBLE_EQ(Emu.getStats().GpuCycles, 0.0);
}

TEST(PolicyRegression, CheckedMemoryAcceptsWholeSuitePrograms) {
  // Allocation-level bounds checking across a full optimized run: no
  // access may leave a live allocation unit.
  auto M = compileMiniC(TimeLoop, "chk");
  runCGCMPipeline(*M);
  Machine Mach;
  Mach.setLaunchPolicy(LaunchPolicy::Managed);
  Mach.setCheckedMemory(true);
  Mach.loadModule(*M);
  Mach.run();
  EXPECT_FALSE(Mach.getOutput().empty());
}

TEST(PolicyRegression, TrapPolicyFaultsOnMappedModuleNever) {
  // A managed module is device-clean: Trap (which is Managed without the
  // name) must run it without faults.
  auto M = compileMiniC(TimeLoop, "trap");
  runCGCMPipeline(*M);
  Machine Mach;
  Mach.setLaunchPolicy(LaunchPolicy::Trap);
  Mach.loadModule(*M);
  Mach.run();
  EXPECT_FALSE(Mach.getOutput().empty());
}

} // namespace
