//===- tests/PipelineTests.cpp - End-to-end CGCM pipeline tests -------------===//
//
// Part of the CGCM reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Integration tests: compile MiniC, run the CGCM pipeline at different
/// optimization settings, execute on the simulated machine, and check
/// both *correctness* (identical output to sequential CPU execution) and
/// *communication structure* (transfer counts drop after promotion).
///
//===----------------------------------------------------------------------===//

#include "exec/Machine.h"
#include "frontend/IRGen.h"
#include "transform/Pipeline.h"

#include <gtest/gtest.h>

using namespace cgcm;

namespace {

struct RunResult {
  std::string Output;
  ExecStats Stats;
  PipelineResult Pipeline;
};

RunResult runConfig(const std::string &Src, bool Parallelize, bool Manage,
                    bool Optimize, LaunchPolicy Policy = LaunchPolicy::Managed) {
  auto M = compileMiniC(Src, "pipe");
  RunResult R;
  PipelineOptions Opts;
  Opts.Parallelize = Parallelize;
  Opts.Manage = Manage;
  Opts.Optimize = Optimize;
  R.Pipeline = runCGCMPipeline(*M, Opts);
  Machine Mach;
  Mach.setLaunchPolicy(Policy);
  Mach.loadModule(*M);
  Mach.run();
  R.Output = Mach.getOutput();
  R.Stats = Mach.getStats();
  return R;
}

/// Sequential reference: no parallelization at all.
std::string runSequential(const std::string &Src) {
  auto M = compileMiniC(Src, "seq");
  Machine Mach;
  Mach.loadModule(*M);
  Mach.run();
  return Mach.getOutput();
}

/// A vector-scale program with a parallelizable loop over a global and a
/// checksum printed at the end.
const char *VecScale = R"(
  double A[256];
  double B[256];
  int main() {
    int i;
    for (i = 0; i < 256; i++) {
      A[i] = i * 0.5;
      B[i] = 0.0;
    }
    for (i = 0; i < 256; i++)
      B[i] = A[i] * 3.0 + 1.0;
    double sum = 0.0;
    for (i = 0; i < 256; i++)
      sum += B[i];
    print_f64(sum);
    return 0;
  }
)";

/// A time-stepped stencil: the classic map-promotion target (a loop
/// spawning many kernels over the same arrays with no CPU access).
const char *Stencil = R"(
  double A[130];
  double B[130];
  void init() {
    int i;
    for (i = 0; i < 130; i++) { A[i] = i % 7; B[i] = 0.0; }
  }
  void step(int t) {
    int i;
    for (i = 1; i < 129; i++)
      B[i] = (A[i - 1] + A[i] + A[i + 1]) / 3.0;
    for (i = 1; i < 129; i++)
      A[i] = B[i];
  }
  int main() {
    init();
    int t;
    for (t = 0; t < 20; t++)
      step(t);
    double sum = 0.0;
    int i;
    for (i = 0; i < 130; i++) sum += A[i];
    print_f64(sum);
    return 0;
  }
)";

} // namespace

TEST(Pipeline, DOALLFindsLoops) {
  auto M = compileMiniC(VecScale, "doall");
  PipelineOptions Opts;
  Opts.Manage = false;
  Opts.Optimize = false;
  PipelineResult R = runCGCMPipeline(*M, Opts);
  // The init loop writes two arrays (two static stores to two objects),
  // the scale loop one; the reduction loop is not DOALL (recurrence).
  EXPECT_GE(R.Doall.KernelsCreated, 2u);
  unsigned Kernels = 0;
  for (const auto &F : M->functions())
    if (F->isKernel())
      ++Kernels;
  EXPECT_EQ(Kernels, R.Doall.KernelsCreated);
}

TEST(Pipeline, ManagedRunMatchesSequential) {
  std::string Seq = runSequential(VecScale);
  RunResult Managed = runConfig(VecScale, true, true, false);
  EXPECT_EQ(Managed.Output, Seq);
  EXPECT_GT(Managed.Stats.KernelLaunches, 0u);
  EXPECT_GT(Managed.Stats.BytesHtoD, 0u);
}

TEST(Pipeline, OptimizedRunMatchesSequential) {
  std::string Seq = runSequential(VecScale);
  RunResult Opt = runConfig(VecScale, true, true, true);
  EXPECT_EQ(Opt.Output, Seq);
}

TEST(Pipeline, StencilCorrectAtAllLevels) {
  std::string Seq = runSequential(Stencil);
  RunResult Unopt = runConfig(Stencil, true, true, false);
  RunResult Opt = runConfig(Stencil, true, true, true);
  EXPECT_EQ(Unopt.Output, Seq);
  EXPECT_EQ(Opt.Output, Seq);
}

TEST(Pipeline, PromotionRemovesCyclicCommunication) {
  RunResult Unopt = runConfig(Stencil, true, true, false);
  RunResult Opt = runConfig(Stencil, true, true, true);
  // Same kernels run either way.
  EXPECT_EQ(Opt.Stats.KernelLaunches, Unopt.Stats.KernelLaunches);
  // Map promotion must hoist maps out of the time loop: dramatically
  // fewer transfers and bytes.
  EXPECT_LT(Opt.Stats.TransfersDtoH, Unopt.Stats.TransfersDtoH / 4);
  EXPECT_LT(Opt.Stats.BytesHtoD, Unopt.Stats.BytesHtoD / 4);
  EXPECT_GT(Opt.Pipeline.MapPromo.LoopHoists +
                Opt.Pipeline.MapPromo.FunctionHoists,
            0u);
  // And the modeled time must improve.
  EXPECT_LT(Opt.Stats.totalCycles(), Unopt.Stats.totalCycles());
}

TEST(Pipeline, UnmanagedGlobalsReadStaleDeviceData) {
  // Kernels referencing module globals without management silently use
  // the (empty) device instance of the global — the paper's "stale or
  // inconsistent data" failure mode.
  auto M = compileMiniC(VecScale, "stale");
  PipelineOptions Opts;
  Opts.Manage = false;
  Opts.Optimize = false;
  runCGCMPipeline(*M, Opts);
  Machine Mach;
  Mach.loadModule(*M);
  Mach.run();
  EXPECT_NE(Mach.getOutput(), runSequential(VecScale));
}

TEST(Pipeline, UnmanagedPointerArgumentTraps) {
  // Kernels receiving raw host pointers fault on the first access: the
  // GPU cannot dereference CPU memory.
  const char *Heap = R"(
    void scale(double *a, int n) {
      int i;
      for (i = 0; i < n; i++) a[i] = a[i] * 2.0;
    }
    int main() {
      double *a = (double*)malloc(64 * sizeof(double));
      scale(a, 64);
      return 0;
    }
  )";
  auto M = compileMiniC(Heap, "trap");
  PipelineOptions Opts;
  Opts.Manage = false;
  Opts.Optimize = false;
  PipelineResult R = runCGCMPipeline(*M, Opts);
  ASSERT_GT(R.Doall.KernelsCreated, 0u);
  Machine Mach;
  Mach.loadModule(*M);
  EXPECT_DEATH(Mach.run(), "GPU function dereferenced a CPU pointer");
}

TEST(Pipeline, InspectorExecutorRunsWithoutManagement) {
  auto M = compileMiniC(VecScale, "ie");
  PipelineOptions Opts;
  Opts.Manage = false;
  Opts.Optimize = false;
  runCGCMPipeline(*M, Opts);
  Machine Mach;
  Mach.setLaunchPolicy(LaunchPolicy::InspectorExecutor);
  Mach.loadModule(*M);
  Mach.run();
  EXPECT_EQ(Mach.getOutput(), runSequential(VecScale));
  // IE transfers one byte per accessed allocation unit, and pays
  // sequential inspection.
  EXPECT_GT(Mach.getStats().InspectorCycles, 0.0);
  EXPECT_GT(Mach.getStats().BytesHtoD, 0u);
  EXPECT_LT(Mach.getStats().BytesHtoD, 100u);
}

TEST(Pipeline, ManualKernelWithManagement) {
  const char *Manual = R"(
    double data[64];
    __kernel void twice(double *a, long n) {
      long i = __tid();
      if (i < n) a[i] = a[i] * 2.0;
    }
    int main() {
      int i;
      for (i = 0; i < 64; i++) data[i] = i;
      launch twice<<<1, 64>>>(data, 64);
      double s = 0.0;
      for (i = 0; i < 64; i++) s += data[i];
      print_f64(s);
      return 0;
    }
  )";
  // Sequentially this cannot run (kernels need a launch), so compare the
  // managed result against the closed form: 2 * sum(0..63) = 4032.
  auto M = compileMiniC(Manual, "manual");
  PipelineOptions Opts;
  Opts.Parallelize = false; // Manual parallelization, automatic management.
  PipelineResult PR = runCGCMPipeline(*M, Opts);
  EXPECT_EQ(PR.Mgmt.LaunchesManaged, 1u);
  Machine Mach;
  Mach.setLaunchPolicy(LaunchPolicy::Managed);
  Mach.loadModule(*M);
  Mach.run();
  EXPECT_EQ(Mach.getOutput(), "4032\n");
}

TEST(Pipeline, HeapArraysThroughFunctions) {
  const char *Heap = R"(
    void scale(double *dst, double *src, int n) {
      int i;
      for (i = 0; i < n; i++)
        dst[i] = src[i] * 2.0 + 1.0;
    }
    int main() {
      int n = 200;
      double *a = (double*)malloc(n * sizeof(double));
      double *b = (double*)malloc(n * sizeof(double));
      int i;
      for (i = 0; i < n; i++) a[i] = i * 0.25;
      int t;
      for (t = 0; t < 8; t++)
        scale(b, a, n);
      double s = 0.0;
      for (i = 0; i < n; i++) s += b[i];
      print_f64(s);
      free((char*)a);
      free((char*)b);
      return 0;
    }
  )";
  std::string Seq = runSequential(Heap);
  RunResult Unopt = runConfig(Heap, true, true, false);
  RunResult Opt = runConfig(Heap, true, true, true);
  EXPECT_EQ(Unopt.Output, Seq);
  EXPECT_EQ(Opt.Output, Seq);
  // Function-scope promotion should hoist maps of 'a' out of scale and
  // then out of the t loop.
  EXPECT_LT(Opt.Stats.BytesHtoD, Unopt.Stats.BytesHtoD);
}
