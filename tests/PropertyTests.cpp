//===- tests/PropertyTests.cpp - Parameterized property sweeps -----------------===//
//
// Part of the CGCM reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Property-style sweeps:
///
///  * generated stencil/BLAS program families over a grid of sizes and
///    time steps: every execution configuration must produce the
///    sequential output bit-for-bit, and promoted communication must
///    stay bounded regardless of iteration count;
///  * randomly generated MiniC programs (seeded): SSA construction and
///    the optimization pipeline must preserve observable behaviour;
///  * randomized heap workloads: the runtime's allocation map stays
///    consistent with the host allocator under malloc/free/realloc
///    churn.
///
//===----------------------------------------------------------------------===//

#include "exec/Machine.h"
#include "frontend/IRGen.h"
#include "transform/Mem2Reg.h"
#include "transform/Pipeline.h"

#include <gtest/gtest.h>

#include <random>
#include <sstream>

using namespace cgcm;

namespace {

std::string runSequentialSrc(const std::string &Src) {
  auto M = compileMiniC(Src, "seq");
  Machine Mach;
  Mach.setLaunchPolicy(LaunchPolicy::CpuEmulation);
  Mach.loadModule(*M);
  Mach.run();
  return Mach.getOutput();
}

struct PipelineRun {
  std::string Output;
  ExecStats Stats;
};

PipelineRun runPipelineSrc(const std::string &Src, bool Optimize,
                           LaunchPolicy Policy = LaunchPolicy::Managed) {
  auto M = compileMiniC(Src, "conf");
  PipelineOptions Opts;
  Opts.Manage = Policy == LaunchPolicy::Managed;
  Opts.Optimize = Optimize;
  runCGCMPipeline(*M, Opts);
  Machine Mach;
  Mach.setLaunchPolicy(Policy);
  Mach.loadModule(*M);
  Mach.run();
  return {Mach.getOutput(), Mach.getStats()};
}

//===----------------------------------------------------------------------===//
// Stencil family sweep
//===----------------------------------------------------------------------===//

using SizeSteps = std::tuple<int, int>;

class StencilFamily : public ::testing::TestWithParam<SizeSteps> {};

std::string stencilProgram(int N, int T) {
  std::ostringstream S;
  S << "double A[" << N << "][" << N << "];\n";
  S << "double B[" << N << "][" << N << "];\n";
  S << "int main() {\n int i; int j; int t;\n";
  S << " for (i = 0; i < " << N << "; i++)\n";
  S << "  for (j = 0; j < " << N << "; j++) {\n";
  S << "   A[i][j] = ((i * 13 + j * 7) % 11) * 0.1;\n   B[i][j] = 0.0;\n  }\n";
  S << " for (t = 0; t < " << T << "; t++) {\n";
  S << "  for (i = 1; i < " << N - 1 << "; i++)\n";
  S << "   for (j = 1; j < " << N - 1 << "; j++)\n";
  S << "    B[i][j] = 0.2 * (A[i][j] + A[i-1][j] + A[i+1][j] + A[i][j-1] + "
       "A[i][j+1]);\n";
  S << "  for (i = 1; i < " << N - 1 << "; i++)\n";
  S << "   for (j = 1; j < " << N - 1 << "; j++)\n";
  S << "    A[i][j] = B[i][j];\n";
  S << " }\n double s = 0.0;\n";
  S << " for (i = 0; i < " << N << "; i++)\n";
  S << "  for (j = 0; j < " << N << "; j++) s += A[i][j];\n";
  S << " print_f64(s);\n return 0;\n}\n";
  return S.str();
}

TEST_P(StencilFamily, AllConfigsAgreeAndPromotionBoundsTransfers) {
  auto [N, T] = GetParam();
  std::string Src = stencilProgram(N, T);
  std::string Ref = runSequentialSrc(Src);
  PipelineRun Unopt = runPipelineSrc(Src, false);
  PipelineRun Opt = runPipelineSrc(Src, true);
  PipelineRun IE =
      runPipelineSrc(Src, false, LaunchPolicy::InspectorExecutor);
  EXPECT_EQ(Unopt.Output, Ref);
  EXPECT_EQ(Opt.Output, Ref);
  EXPECT_EQ(IE.Output, Ref);
  // Cyclic: transfers grow with T. Acyclic: constant in T.
  EXPECT_GE(Unopt.Stats.TransfersHtoD, static_cast<uint64_t>(T));
  EXPECT_LE(Opt.Stats.TransfersHtoD, 4u);
  EXPECT_LE(Opt.Stats.TransfersDtoH, 4u);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, StencilFamily,
    ::testing::Values(SizeSteps{8, 2}, SizeSteps{8, 17}, SizeSteps{13, 5},
                      SizeSteps{24, 9}, SizeSteps{33, 3}),
    [](const ::testing::TestParamInfo<SizeSteps> &I) {
      return "N" + std::to_string(std::get<0>(I.param)) + "_T" +
             std::to_string(std::get<1>(I.param));
    });

//===----------------------------------------------------------------------===//
// Random program generation
//===----------------------------------------------------------------------===//

/// Generates a random but deterministic MiniC program: integer and double
/// scalar locals updated through loops, conditionals, and arithmetic,
/// plus one global array written with affine subscripts. Division is
/// avoided (no UB) and all values stay bounded.
std::string randomProgram(unsigned Seed) {
  std::mt19937 Rng(Seed);
  auto Pick = [&](int Lo, int Hi) {
    return Lo + static_cast<int>(Rng() % (Hi - Lo + 1));
  };
  std::ostringstream S;
  int N = Pick(8, 40);
  S << "double out[" << N << "];\n";
  S << "int main() {\n";
  int IntVars = Pick(2, 4), FpVars = Pick(2, 4);
  for (int I = 0; I != IntVars; ++I)
    S << " int v" << I << " = " << Pick(-5, 9) << ";\n";
  for (int I = 0; I != FpVars; ++I)
    S << " double f" << I << " = " << Pick(0, 9) << "." << Pick(0, 9)
      << ";\n";
  S << " int i;\n";

  int Stmts = Pick(4, 10);
  for (int K = 0; K != Stmts; ++K) {
    int IV = Pick(0, IntVars - 1), IV2 = Pick(0, IntVars - 1);
    int FV = Pick(0, FpVars - 1), FV2 = Pick(0, FpVars - 1);
    switch (Pick(0, 4)) {
    case 0:
      S << " v" << IV << " = v" << IV2 << " * " << Pick(1, 3) << " + "
        << Pick(-4, 4) << ";\n";
      break;
    case 1:
      S << " f" << FV << " = f" << FV2 << " * 0." << Pick(1, 9) << " + v"
        << IV << ";\n";
      break;
    case 2:
      S << " if (v" << IV << " % 2 == 0) v" << IV2 << " = v" << IV2
        << " + 1; else f" << FV << " = f" << FV << " * 0.5;\n";
      break;
    case 3:
      S << " for (i = 0; i < " << Pick(2, 9) << "; i++) f" << FV << " = f"
        << FV << " * 0.9 + 0." << Pick(1, 9) << ";\n";
      break;
    case 4:
      S << " v" << IV << " = (v" << IV << " + " << Pick(1, 7) << ") % "
        << Pick(3, 9) << ";\n";
      break;
    }
  }
  // One parallelizable loop so the pipeline has something to transform.
  S << " for (i = 0; i < " << N << "; i++)\n";
  S << "  out[i] = i * f0 + v0;\n";
  S << " double s = f1;\n";
  for (int I = 0; I != IntVars; ++I)
    S << " s += v" << I << ";\n";
  S << " for (i = 0; i < " << N << "; i++) s += out[i];\n";
  S << " print_f64(s);\n return 0;\n}\n";
  return S.str();
}

class RandomPrograms : public ::testing::TestWithParam<unsigned> {};

TEST_P(RandomPrograms, PipelinePreservesBehaviour) {
  std::string Src = randomProgram(GetParam());
  std::string Ref = runSequentialSrc(Src);
  ASSERT_FALSE(Ref.empty());
  EXPECT_EQ(runPipelineSrc(Src, false).Output, Ref) << Src;
  EXPECT_EQ(runPipelineSrc(Src, true).Output, Ref) << Src;
}

TEST_P(RandomPrograms, Mem2RegPreservesBehaviour) {
  std::string Src = randomProgram(GetParam() + 1000);
  auto M1 = compileMiniC(Src, "raw");
  Machine A;
  A.setLaunchPolicy(LaunchPolicy::CpuEmulation);
  A.loadModule(*M1);
  A.run();
  auto M2 = compileMiniC(Src, "ssa");
  promoteAllocasToRegisters(*M2);
  Machine B;
  B.setLaunchPolicy(LaunchPolicy::CpuEmulation);
  B.loadModule(*M2);
  B.run();
  EXPECT_EQ(A.getOutput(), B.getOutput()) << Src;
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomPrograms,
                         ::testing::Range(1u, 21u));

//===----------------------------------------------------------------------===//
// Heap churn
//===----------------------------------------------------------------------===//

class HeapChurn : public ::testing::TestWithParam<unsigned> {};

TEST_P(HeapChurn, RuntimeTrackingSurvivesMallocFreeRealloc) {
  std::mt19937 Rng(GetParam());
  std::ostringstream S;
  S << "int main() {\n";
  S << " double *slots[8];\n int sizes[8];\n int i;\n";
  S << " for (i = 0; i < 8; i++) { slots[i] = (double*)0; sizes[i] = 0; }\n";
  // A deterministic churn script generated here, executed in MiniC.
  int Live[8] = {0};
  for (int Step = 0; Step != 40; ++Step) {
    int SlotN = static_cast<int>(Rng() % 8);
    int Action = static_cast<int>(Rng() % 3);
    if (!Live[SlotN]) {
      int Elems = 2 + static_cast<int>(Rng() % 30);
      S << " slots[" << SlotN << "] = (double*)malloc(" << Elems
        << " * sizeof(double));\n";
      S << " sizes[" << SlotN << "] = " << Elems << ";\n";
      S << " for (i = 0; i < " << Elems << "; i++) slots[" << SlotN
        << "][i] = i * 0.5 + " << Step << ";\n";
      Live[SlotN] = 1;
    } else if (Action == 0) {
      S << " free((char*)slots[" << SlotN << "]);\n";
      S << " sizes[" << SlotN << "] = 0;\n";
      Live[SlotN] = 0;
    } else if (Action == 1) {
      int Elems = 2 + static_cast<int>(Rng() % 40);
      S << " slots[" << SlotN << "] = (double*)realloc((char*)slots["
        << SlotN << "], " << Elems << " * sizeof(double));\n";
      S << " if (sizes[" << SlotN << "] > " << Elems << ") sizes[" << SlotN
        << "] = " << Elems << ";\n";
    } else {
      S << " slots[" << SlotN << "][0] = slots[" << SlotN << "][0] + 1.0;\n";
    }
  }
  S << " double sum = 0.0;\n";
  S << " for (i = 0; i < 8; i++) {\n";
  S << "  if (sizes[i] > 0) {\n   int j;\n";
  S << "   for (j = 0; j < sizes[i]; j++) {\n";
  S << "    if (slots[i] != (double*)0) sum += slots[i][j] * 0.001;\n";
  S << "   }\n  }\n }\n";
  S << " print_f64(sum);\n return 0;\n}\n";

  std::string Src = S.str();
  std::string Ref = runSequentialSrc(Src);
  // Under management (no kernels here, but declare/track hooks all fire),
  // the same output and no tracking faults.
  auto M = compileMiniC(Src, "churn");
  runCGCMPipeline(*M);
  Machine Mach;
  Mach.setLaunchPolicy(LaunchPolicy::Managed);
  Mach.setCheckedMemory(true);
  Mach.loadModule(*M);
  Mach.run();
  EXPECT_EQ(Mach.getOutput(), Ref);
}

INSTANTIATE_TEST_SUITE_P(Seeds, HeapChurn,
                         ::testing::Values(3u, 17u, 42u, 256u, 999u));

} // namespace
