//===- tests/RuntimeTests.cpp - CGCM runtime library unit tests ---------------===//
//
// Part of the CGCM reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Unit tests for the run-time support library (paper section 3,
/// Algorithms 1-3): allocation-unit tracking, greatest-LTE lookup,
/// pointer translation, reference counting, epochs, read-only units,
/// array mapping, stack registration expiry, and heap wrapper behaviour,
/// plus property-style sweeps over random map/release sequences.
///
//===----------------------------------------------------------------------===//

#include "gpusim/DevicePool.h"
#include "gpusim/GPUDevice.h"
#include "runtime/CGCMRuntime.h"
#include "runtime/RuntimeAuditor.h"

#include <gtest/gtest.h>

#include <random>

using namespace cgcm;

namespace {

class RuntimeTest : public ::testing::Test {
protected:
  TimingModel TM;
  ExecStats Stats;
  SimMemory Host{HostAddressBase, "host"};
  GPUDevice Device{TM, Stats};
  CGCMRuntime RT{Host, Device, TM, Stats};

  uint64_t heapUnit(uint64_t Size) {
    uint64_t P = Host.allocate(Size);
    RT.notifyHeapAlloc(P, Size);
    return P;
  }
};

TEST_F(RuntimeTest, GreatestLTELookupFindsInteriorPointers) {
  uint64_t A = heapUnit(256);
  uint64_t B = heapUnit(64);

  const AllocUnitInfo *Info = RT.lookup(A);
  ASSERT_NE(Info, nullptr);
  EXPECT_EQ(Info->Base, A);
  EXPECT_EQ(Info->Size, 256u);

  // Interior pointer resolves to the same unit.
  Info = RT.lookup(A + 255);
  ASSERT_NE(Info, nullptr);
  EXPECT_EQ(Info->Base, A);

  // One-past-the-end belongs to no unit (or the next unit, never A).
  Info = RT.lookup(A + 256);
  if (Info)
    EXPECT_NE(Info->Base, A);

  Info = RT.lookup(B + 10);
  ASSERT_NE(Info, nullptr);
  EXPECT_EQ(Info->Base, B);
}

TEST_F(RuntimeTest, MapTranslatesWithOffsetPreserved) {
  uint64_t P = heapUnit(512);
  uint64_t Dev = RT.map(P + 100);
  EXPECT_TRUE(isDeviceAddress(Dev));
  uint64_t DevBase = RT.map(P);
  EXPECT_EQ(Dev, DevBase + 100);
  // Aliases map to a single device unit (paper: map preserves aliasing).
  uint64_t Dev2 = RT.map(P + 100);
  EXPECT_EQ(Dev2, Dev);
  RT.release(P);
  RT.release(P);
  RT.release(P);
}

TEST_F(RuntimeTest, MapCopiesOnlyOnFirstReference) {
  uint64_t P = heapUnit(1024);
  uint64_t Before = Stats.BytesHtoD;
  RT.map(P);
  EXPECT_EQ(Stats.BytesHtoD - Before, 1024u);
  RT.map(P); // Already resident: no copy.
  RT.map(P + 8);
  EXPECT_EQ(Stats.BytesHtoD - Before, 1024u);
  RT.release(P);
  RT.release(P);
  RT.release(P);
  // Fully released: the next map copies again.
  RT.map(P);
  EXPECT_EQ(Stats.BytesHtoD - Before, 2048u);
  RT.release(P);
}

TEST_F(RuntimeTest, MapRoundTripsData) {
  uint64_t P = heapUnit(64);
  double V = 3.25;
  Host.write(P + 16, &V, 8);
  uint64_t Dev = RT.map(P);
  double DevV;
  Device.getMemory().read(Dev + 16, &DevV, 8);
  EXPECT_DOUBLE_EQ(DevV, 3.25);

  // "Kernel" writes; unmap brings it home.
  double W = 7.5;
  Device.getMemory().write(Dev + 16, &W, 8);
  RT.onKernelLaunch();
  RT.unmap(P);
  Host.read(P + 16, &V, 8);
  EXPECT_DOUBLE_EQ(V, 7.5);
  RT.release(P);
}

TEST_F(RuntimeTest, UnmapCopiesAtMostOncePerEpoch) {
  uint64_t P = heapUnit(256);
  RT.map(P);
  RT.onKernelLaunch();
  uint64_t Before = Stats.BytesDtoH;
  RT.unmap(P);
  EXPECT_EQ(Stats.BytesDtoH - Before, 256u);
  RT.unmap(P); // Same epoch: no copy.
  RT.unmap(P + 30);
  EXPECT_EQ(Stats.BytesDtoH - Before, 256u);
  RT.onKernelLaunch(); // New launch: stale again.
  RT.unmap(P);
  EXPECT_EQ(Stats.BytesDtoH - Before, 512u);
  RT.release(P);
}

TEST_F(RuntimeTest, UnmapOfUnmappedUnitIsHarmless) {
  uint64_t P = heapUnit(64);
  uint64_t Before = Stats.BytesDtoH;
  RT.unmap(P); // Nothing resident.
  EXPECT_EQ(Stats.BytesDtoH, Before);
}

TEST_F(RuntimeTest, ReadOnlyUnitsNeverCopyBack) {
  uint64_t G = Host.allocate(128);
  RT.declareGlobal("lookup_table", G, 128, /*IsReadOnly=*/true);
  RT.map(G);
  RT.onKernelLaunch();
  uint64_t Before = Stats.BytesDtoH;
  RT.unmap(G);
  EXPECT_EQ(Stats.BytesDtoH, Before);
  RT.release(G);
}

TEST_F(RuntimeTest, GlobalsUseNamedRegionsAndSurviveRelease) {
  uint64_t G = Host.allocate(64);
  RT.declareGlobal("state", G, 64, false);
  uint64_t Dev1 = RT.map(G);
  EXPECT_TRUE(Device.hasModuleGlobal("state"));
  RT.release(G); // Reference count zero, but globals are never freed.
  uint64_t Dev2 = RT.map(G);
  EXPECT_EQ(Dev1, Dev2); // Same named region.
  RT.release(G);
}

TEST_F(RuntimeTest, ReleaseFreesDeviceMemoryAtZero) {
  uint64_t P = heapUnit(128);
  RT.map(P);
  RT.map(P);
  EXPECT_EQ(Device.getMemory().getNumLiveAllocations(), 1u);
  RT.release(P);
  EXPECT_EQ(Device.getMemory().getNumLiveAllocations(), 1u);
  RT.release(P);
  EXPECT_EQ(Device.getMemory().getNumLiveAllocations(), 0u);
}

TEST_F(RuntimeTest, ReleaseUnderflowIsFatal) {
  uint64_t P = heapUnit(64);
  EXPECT_DEATH(RT.release(P), "release of an unmapped allocation unit");
}

TEST_F(RuntimeTest, MapOfUntrackedPointerIsFatal) {
  EXPECT_DEATH(RT.map(HostAddressBase + 999999),
               "in no tracked allocation unit");
}

TEST_F(RuntimeTest, HeapFreeOfMappedUnitDefersReclaim) {
  // Freeing a still-mapped unit used to free the device copy and erase
  // the unit, so the compiler's paired release() died on "no tracked
  // allocation unit". Destruction is now deferred until the references
  // drain (minimized program: tests/fuzz/free_while_mapped.minic).
  uint64_t P = heapUnit(64);
  RT.map(P);
  EXPECT_EQ(Device.getMemory().getNumLiveAllocations(), 1u);
  RT.notifyHeapFree(P);
  // Still tracked, device copy intact: the paired unmap/release resolve.
  const AllocUnitInfo *Info = RT.lookup(P);
  ASSERT_NE(Info, nullptr);
  EXPECT_TRUE(Info->HostDead);
  EXPECT_EQ(Device.getMemory().getNumLiveAllocations(), 1u);
  // unmap must not copy back into freed host memory.
  RT.onKernelLaunch();
  uint64_t Before = Stats.BytesDtoH;
  RT.unmap(P);
  EXPECT_EQ(Stats.BytesDtoH, Before);
  // The final release reclaims the device copy and forgets the unit.
  RT.release(P);
  EXPECT_EQ(Device.getMemory().getNumLiveAllocations(), 0u);
  EXPECT_EQ(RT.lookup(P), nullptr);
}

TEST_F(RuntimeTest, MapOfHostDeadUnitIsFatal) {
  uint64_t P = heapUnit(64);
  RT.map(P);
  RT.notifyHeapFree(P);
  EXPECT_DEATH(RT.map(P), "host memory was already freed");
}

TEST_F(RuntimeTest, ReallocOfMappedUnitSalvagesDeviceData) {
  // realloc of a mapped unit used to discard the device copy outright,
  // losing kernel writes the host had not yet seen (minimized program:
  // tests/fuzz/realloc_while_mapped.minic).
  uint64_t P = heapUnit(64);
  double V = 1.0;
  Host.write(P + 16, &V, 8);
  uint64_t Dev = RT.map(P);
  double W = 42.5; // "Kernel" writes; the host copy is now stale.
  Device.getMemory().write(Dev + 16, &W, 8);
  RT.onKernelLaunch();

  uint64_t Q = Host.reallocate(P, 128);
  RT.notifyHeapRealloc(P, Q, 128);
  // The device-side update was salvaged into the new block.
  Host.read(Q + 16, &V, 8);
  EXPECT_DOUBLE_EQ(V, 42.5);
  // The old unit is a deferred zombie; its paired calls still resolve.
  ASSERT_NE(RT.lookup(P), nullptr);
  RT.unmap(P);
  RT.release(P);
  EXPECT_EQ(RT.lookup(P), nullptr);
  EXPECT_EQ(Device.getMemory().getNumLiveAllocations(), 0u);
  ASSERT_NE(RT.lookup(Q), nullptr);
}

TEST_F(RuntimeTest, AddressReuseEvictsHostDeadZombie) {
  // The host allocator may hand a zombie's address range out again; the
  // new registration must evict the zombie rather than corrupt it.
  uint64_t P = heapUnit(64);
  RT.map(P);
  RT.notifyHeapFree(P); // Deferred: zombie keeps the device copy.
  Host.free(P);
  uint64_t Q = Host.allocate(64); // Exact-size reuse returns P again.
  ASSERT_EQ(Q, P);
  RT.notifyHeapAlloc(Q, 64);
  const AllocUnitInfo *Info = RT.lookup(Q);
  ASSERT_NE(Info, nullptr);
  EXPECT_FALSE(Info->HostDead);
  EXPECT_EQ(Info->RefCount, 0u);
  // The zombie's device copy went with it.
  EXPECT_EQ(Device.getMemory().getNumLiveAllocations(), 0u);
  EXPECT_EQ(RT.getNumTrackedUnits(), 1u);
}

TEST_F(RuntimeTest, EvictionScrubsOtherUnitsSnapshots) {
  // Found by the API-sequence fuzzer (cgcm-fuzz --mode=api): a mapped
  // pointer table snapshots its elements, an element is freed while
  // mapped (zombie), and the zombie's address range is reused. Eviction
  // must scrub the table's snapshot — otherwise the paired releaseArray
  // misdirects a release at whatever owns the range next (fatal
  // "release of an unmapped allocation unit" or refcount corruption).
  uint64_t E = heapUnit(64);
  uint64_t Table = heapUnit(2 * 8);
  Host.writeUInt(Table + 0, E, 8);
  Host.writeUInt(Table + 8, 0, 8);
  RT.mapArray(Table); // Snapshot holds E; E.RefCount == 1.

  RT.notifyHeapFree(E); // Deferred: the snapshot's reference keeps it.
  Host.free(E);
  uint64_t Reuse = Host.allocate(64); // Exact-size reuse returns E.
  ASSERT_EQ(Reuse, E);
  RT.notifyHeapAlloc(Reuse, 64); // Evicts the zombie.

  // The new unit must be untouched by the table's teardown.
  RT.releaseArray(Table);
  const AllocUnitInfo *Info = RT.lookup(Reuse);
  ASSERT_NE(Info, nullptr);
  EXPECT_EQ(Info->RefCount, 0u);
  EXPECT_FALSE(Info->HostDead);
  EXPECT_EQ(RT.getNumMappedUnits(), 0u);
  EXPECT_EQ(Device.getMemory().getNumLiveAllocations(), 0u);
}

TEST_F(RuntimeTest, ReallocRetracksTheUnit) {
  uint64_t P = heapUnit(64);
  uint64_t Q = Host.reallocate(P, 256);
  RT.notifyHeapRealloc(P, Q, 256);
  EXPECT_EQ(RT.lookup(P), nullptr);
  const AllocUnitInfo *Info = RT.lookup(Q + 200);
  ASSERT_NE(Info, nullptr);
  EXPECT_EQ(Info->Size, 256u);
}

TEST_F(RuntimeTest, DeclareAllocaExpiresAtScopeExit) {
  uint64_t P = Host.allocate(96);
  RT.declareAlloca(P, 96);
  EXPECT_NE(RT.lookup(P), nullptr);
  RT.map(P);
  RT.removeAlloca(P); // Scope exit frees the device copy too.
  EXPECT_EQ(RT.lookup(P), nullptr);
  EXPECT_EQ(Device.getMemory().getNumLiveAllocations(), 0u);
}

TEST_F(RuntimeTest, MapArrayTranslatesEveryElement) {
  // A pointer table with two targets and a null slot.
  uint64_t T0 = heapUnit(64);
  uint64_t T1 = heapUnit(32);
  uint64_t Table = heapUnit(3 * 8);
  Host.writeUInt(Table + 0, T0 + 8, 8); // Interior pointer element.
  Host.writeUInt(Table + 8, 0, 8);      // Null stays null.
  Host.writeUInt(Table + 16, T1, 8);

  uint64_t DevTable = RT.mapArray(Table);
  uint64_t E0 = Device.getMemory().readUInt(DevTable + 0, 8);
  uint64_t E1 = Device.getMemory().readUInt(DevTable + 8, 8);
  uint64_t E2 = Device.getMemory().readUInt(DevTable + 16, 8);
  EXPECT_TRUE(isDeviceAddress(E0));
  EXPECT_EQ(E1, 0u);
  EXPECT_TRUE(isDeviceAddress(E2));
  // The interior offset survives translation.
  uint64_t DevT0 = RT.map(T0);
  EXPECT_EQ(E0, DevT0 + 8);
  RT.release(T0);

  // Element data actually moved.
  double V = 1.5;
  Host.write(T1, &V, 8); // Host changed *after* the copy...
  double DevV;
  Device.getMemory().read(E2, &DevV, 8);
  EXPECT_DOUBLE_EQ(DevV, 0.0); // ...so the device still has the old bytes.

  RT.onKernelLaunch();
  RT.unmapArray(Table);
  RT.releaseArray(Table);
  EXPECT_EQ(RT.getNumMappedUnits(), 0u);
}

TEST_F(RuntimeTest, MapArrayBalancedRefcountsAcrossRepeats) {
  uint64_t T0 = heapUnit(64);
  uint64_t Table = heapUnit(8);
  Host.writeUInt(Table, T0, 8);
  RT.mapArray(Table);
  RT.mapArray(Table); // Second map: refcounts go to 2 everywhere.
  RT.releaseArray(Table);
  EXPECT_GT(RT.getNumMappedUnits(), 0u);
  RT.releaseArray(Table);
  EXPECT_EQ(RT.getNumMappedUnits(), 0u);
}

TEST_F(RuntimeTest, MapArrayRemapRefreshesDeviceTranslations) {
  // A host slot updated between two mapArray calls used to leave the
  // *old* translation in the device copy (the re-map path never wrote
  // the new one). Minimized program: tests/fuzz/array_remap_stale.minic.
  uint64_t T0 = heapUnit(32);
  uint64_t T1 = heapUnit(32);
  uint64_t Table = heapUnit(8);
  Host.writeUInt(Table, T0, 8);
  uint64_t DevTable = RT.mapArray(Table);
  Host.writeUInt(Table, T1, 8); // Retarget the slot...
  RT.mapArray(Table);           // ...and re-map.
  uint64_t Slot = Device.getMemory().readUInt(DevTable, 8);
  uint64_t DevT1 = RT.map(T1);
  EXPECT_EQ(Slot, DevT1); // Device slot points at T1's copy, not T0's.
  RT.release(T1);
  // LIFO teardown pairs each releaseArray with its own map generation.
  RT.releaseArray(Table);
  RT.releaseArray(Table);
  EXPECT_EQ(RT.getNumMappedUnits(), 0u);
  EXPECT_EQ(Device.getMemory().getNumLiveAllocations(), 0u);
}

TEST_F(RuntimeTest, MapArrayHonorsRefCountReuseAblation) {
  uint64_t T0 = heapUnit(64);
  uint64_t Table = heapUnit(8);
  Host.writeUInt(Table, T0, 8);
  RT.setRefCountReuseEnabled(false);
  RT.mapArray(Table);
  uint64_t After1 = Stats.BytesHtoD;
  RT.mapArray(Table); // Ablated: the re-map re-copies the raw bytes.
  EXPECT_EQ(Stats.BytesHtoD - After1, 8u + 64u); // Table + element.
  RT.releaseArray(Table);
  RT.releaseArray(Table);
  EXPECT_EQ(Device.getMemory().getNumLiveAllocations(), 0u);
}

TEST_F(RuntimeTest, UnmapArrayOfUnmappedUnitIsFreeNoOp) {
  // Parity with scalar unmap: nothing resident, nothing charged.
  uint64_t Table = heapUnit(16);
  uint64_t Calls = Stats.RuntimeCalls;
  double Cycles = Stats.RuntimeCycles;
  RT.unmapArray(Table);
  EXPECT_EQ(Stats.RuntimeCalls, Calls);
  EXPECT_EQ(Stats.RuntimeCycles, Cycles);
}

TEST_F(RuntimeTest, ScalarUnmapOfPointerArrayPreservesHostSlots) {
  // A unit mapped via mapArray can reach a *scalar* unmap (aliasing, or
  // manual runtime use). Its GPU copy holds translated device pointers;
  // copying it back verbatim would corrupt the host slots, so scalar
  // unmap must skip the copy-back exactly like unmapArray does.
  uint64_t T0 = heapUnit(32);
  uint64_t Table = heapUnit(2 * 8);
  Host.writeUInt(Table + 0, T0, 8);
  Host.writeUInt(Table + 8, 0, 8);
  RT.mapArray(Table);
  RT.onKernelLaunch(); // Fresh epoch: unmap would copy back if eligible.
  RT.unmap(Table);
  EXPECT_EQ(Host.readUInt(Table + 0, 8), T0); // Still the host pointer.
  EXPECT_EQ(Host.readUInt(Table + 8, 8), 0u);
  RT.releaseArray(Table);
  EXPECT_EQ(RT.getNumMappedUnits(), 0u);
}

TEST_F(RuntimeTest, ZombieElementReleaseScrubsSnapshots) {
  // The scalar reference to an element can outlive the table's: map(E),
  // mapArray(Table), free(E) (zombie), then the scalar release chain
  // drops E to zero and forgets it. The table's snapshot still listed E,
  // so without scrubbing the paired unmapArray/releaseArray would
  // misdirect an unmap/release at a dead address (fatal lookup).
  uint64_t E = heapUnit(64);
  uint64_t Table = heapUnit(8);
  Host.writeUInt(Table, E, 8);
  RT.map(E);          // Scalar reference: E.RefCount == 1.
  RT.mapArray(Table); // Snapshot holds E; E.RefCount == 2.
  RT.notifyHeapFree(E); // Zombie: references keep the device copy.
  Host.free(E);
  RT.release(E); // Scalar release: E.RefCount == 1 (snapshot's).
  // Tear the table down through releaseSnapshotElements' zombie-erase
  // path; the snapshot's reference is the last one.
  RT.onKernelLaunch();
  RT.unmapArray(Table); // E is host-dead: unmap skips the copy-back.
  RT.releaseArray(Table);
  EXPECT_EQ(RT.lookup(E), nullptr);
  EXPECT_EQ(RT.getNumMappedUnits(), 0u);
  EXPECT_EQ(Device.getMemory().getNumLiveAllocations(), 0u);
}

TEST_F(RuntimeTest, SetHostPinnedMarksTheUnit) {
  uint64_t P = heapUnit(128);
  const AllocUnitInfo *Info = RT.lookup(P);
  ASSERT_NE(Info, nullptr);
  EXPECT_FALSE(Info->Pinned);
  EXPECT_TRUE(RT.setHostPinned(P + 100, true)); // Interior pointer works.
  EXPECT_TRUE(Info->Pinned);
  EXPECT_TRUE(RT.setHostPinned(P, false));
  EXPECT_FALSE(Info->Pinned);
  // Untracked pointers are reported, not fatal.
  EXPECT_FALSE(RT.setHostPinned(P + 4096, true));
}

TEST_F(RuntimeTest, PinnedSkipsStagingCostOnAsyncCopies) {
  // Pinning is purely a timing attribute of the asynchronous model: the
  // pageable run pays the staging cost on top of the DMA time, the
  // pinned run does not, and the bytes moved are identical.
  StreamEngineConfig C;
  C.Async = true;
  C.Streams = 2;
  C.Coalesce = false; // Both copies are batch heads: same fixed latency.
  Device.getStreamEngine().configure(C);

  uint64_t Pageable = heapUnit(4096);
  uint64_t Pinned = heapUnit(4096);
  RT.setHostPinned(Pinned, true);

  double Before = Stats.CommCycles;
  RT.map(Pageable);
  double PageableCost = Stats.CommCycles - Before;
  Before = Stats.CommCycles;
  RT.map(Pinned);
  double PinnedCost = Stats.CommCycles - Before;
  EXPECT_NEAR(PageableCost - PinnedCost,
              4096.0 / TM.PageableStagingBytesPerCycle, 1e-9);
  RT.release(Pageable);
  RT.release(Pinned);
}

TEST_F(RuntimeTest, ReleaseArrayUsesSnapshotNotCurrentSlots) {
  // A slot overwritten between mapArray and releaseArray used to leak
  // the originally-mapped element's reference and underflow the new
  // occupant's. Minimized program: tests/fuzz/array_slot_swap.minic.
  uint64_t T0 = heapUnit(32);
  uint64_t T1 = heapUnit(32);
  uint64_t Table = heapUnit(8);
  Host.writeUInt(Table, T0, 8);
  RT.mapArray(Table);
  Host.writeUInt(Table, T1, 8); // Overwritten while mapped.
  RT.onKernelLaunch();
  RT.unmapArray(Table);  // Syncs T0 (what was mapped), not T1.
  RT.releaseArray(Table); // Releases T0, not T1 (no underflow).
  EXPECT_EQ(RT.getNumMappedUnits(), 0u);
  EXPECT_EQ(Device.getMemory().getNumLiveAllocations(), 0u);
}

TEST_F(RuntimeTest, PointerArrayTailBytesSurviveMapping) {
  // Size % 8 != 0: the trailing non-slot bytes still travel with the
  // raw copy.
  uint64_t T0 = heapUnit(32);
  uint64_t Table = heapUnit(20); // Two slots + a 4-byte tail.
  Host.writeUInt(Table + 0, T0, 8);
  Host.writeUInt(Table + 8, 0, 8);
  Host.writeUInt(Table + 16, 0xDEADBEEF, 4);
  uint64_t DevTable = RT.mapArray(Table);
  EXPECT_EQ(Device.getMemory().readUInt(DevTable + 16, 4), 0xDEADBEEFu);
  RT.releaseArray(Table);
  EXPECT_EQ(Device.getMemory().getNumLiveAllocations(), 0u);
}

TEST_F(RuntimeTest, DuplicateSlotsBalanceElementRefcounts) {
  uint64_t T0 = heapUnit(32);
  uint64_t Table = heapUnit(16);
  Host.writeUInt(Table + 0, T0, 8);
  Host.writeUInt(Table + 8, T0 + 16, 8); // Duplicate via interior pointer.
  RT.mapArray(Table);
  const AllocUnitInfo *Info = RT.lookup(T0);
  ASSERT_NE(Info, nullptr);
  EXPECT_EQ(Info->RefCount, 2u); // Mapped once per slot.
  RT.releaseArray(Table);
  EXPECT_EQ(RT.getNumMappedUnits(), 0u);
  EXPECT_EQ(Device.getMemory().getNumLiveAllocations(), 0u);
}

TEST_F(RuntimeTest, RemoveAllocaReleasesNestedArrayReferences) {
  // A mapped pointer-array alloca going out of scope used to free only
  // its own device copy, leaking every element reference it held.
  uint64_t T0 = heapUnit(64);
  uint64_t A = Host.allocate(16);
  RT.declareAlloca(A, 16);
  Host.writeUInt(A + 0, T0, 8);
  Host.writeUInt(A + 8, 0, 8);
  RT.mapArray(A);
  EXPECT_EQ(Device.getMemory().getNumLiveAllocations(), 2u);
  RT.removeAlloca(A); // Scope exit: nested references drain too.
  EXPECT_EQ(RT.lookup(A), nullptr);
  EXPECT_EQ(RT.getNumMappedUnits(), 0u);
  EXPECT_EQ(Device.getMemory().getNumLiveAllocations(), 0u);
}

TEST_F(RuntimeTest, ReleaseAllResetsPointerArrayState) {
  // releaseAll used to zero only RefCount/DevPtr, leaving IsPointerArray
  // and Epoch stale for the unit's next mapping generation.
  uint64_t T0 = heapUnit(32);
  uint64_t Table = heapUnit(8);
  Host.writeUInt(Table, T0, 8);
  RT.mapArray(Table);
  RT.onKernelLaunch();
  RT.releaseAll();
  const AllocUnitInfo *Info = RT.lookup(Table);
  ASSERT_NE(Info, nullptr);
  EXPECT_EQ(Info->RefCount, 0u);
  EXPECT_FALSE(Info->IsPointerArray);
  EXPECT_EQ(Info->Epoch, 0u);
  EXPECT_TRUE(Info->ElemSnapshots.empty());
  EXPECT_EQ(Device.getMemory().getNumLiveAllocations(), 0u);
  // The next scalar mapping generation starts clean.
  RT.map(Table);
  RT.release(Table);
  EXPECT_EQ(Device.getMemory().getNumLiveAllocations(), 0u);
}

//===----------------------------------------------------------------------===//
// The shadow-refcount auditor (the fuzzer's oracle)
//===----------------------------------------------------------------------===//

TEST_F(RuntimeTest, AuditorCleanOnBalancedSequence) {
  RuntimeAuditor Auditor;
  RT.setObserver(&Auditor);
  uint64_t P = heapUnit(64);
  uint64_t T0 = heapUnit(32);
  uint64_t Table = heapUnit(8);
  Host.writeUInt(Table, T0, 8);
  RT.map(P);
  RT.mapArray(Table);
  RT.onKernelLaunch();
  RT.unmap(P);
  RT.unmapArray(Table);
  RT.release(P);
  RT.releaseArray(Table);
  RT.notifyHeapFree(Table);
  RT.notifyHeapFree(T0);
  RT.notifyHeapFree(P);
  Auditor.finish(RT, Device, Stats);
  EXPECT_TRUE(Auditor.getReport().clean()) << Auditor.getReport().str();
  EXPECT_GT(Auditor.getReport().Events, 0u);
}

TEST_F(RuntimeTest, AuditorFlagsUnbalancedMapAsLeak) {
  RuntimeAuditor Auditor;
  RT.setObserver(&Auditor);
  uint64_t P = heapUnit(64);
  RT.map(P); // Never released.
  Auditor.finish(RT, Device, Stats);
  const AuditReport &R = Auditor.getReport();
  ASSERT_FALSE(R.clean());
  EXPECT_NE(R.str().find("still mapped at exit"), std::string::npos);
  EXPECT_NE(R.str().find("leaked device allocation"), std::string::npos);
}

TEST_F(RuntimeTest, AuditorTracksDeferredReclaims) {
  RuntimeAuditor Auditor;
  RT.setObserver(&Auditor);
  uint64_t P = heapUnit(64);
  RT.map(P);
  RT.notifyHeapFree(P);
  RT.release(P);
  Auditor.finish(RT, Device, Stats);
  EXPECT_TRUE(Auditor.getReport().clean()) << Auditor.getReport().str();
  EXPECT_EQ(Auditor.getReport().DeferredReclaims, 1u);
}

TEST_F(RuntimeTest, TranslateToDeviceOnlyWhenResident) {
  uint64_t P = heapUnit(128);
  uint64_t Dev;
  EXPECT_FALSE(RT.translateToDevice(P, Dev));
  uint64_t Mapped = RT.map(P);
  ASSERT_TRUE(RT.translateToDevice(P + 64, Dev));
  EXPECT_EQ(Dev, Mapped + 64);
  RT.release(P);
  EXPECT_FALSE(RT.translateToDevice(P, Dev));
}

//===----------------------------------------------------------------------===//
// Multi-device pool: replicas and cross-device invalidation
//===----------------------------------------------------------------------===//

class PoolRuntimeTest : public ::testing::Test {
protected:
  TimingModel TM;
  ExecStats Stats;
  SimMemory Host{HostAddressBase, "host"};
  DevicePool Pool{TM, Stats};
  CGCMRuntime RT{Host, Pool.device(0), TM, Stats};

  PoolRuntimeTest() {
    Pool.setDeviceCount(4);
    RT.setDevicePool(&Pool);
  }
};

TEST_F(PoolRuntimeTest, HostWriteInvalidatesEveryPeerReplica) {
  uint64_t P = Host.allocate(256);
  RT.notifyHeapAlloc(P, 256);
  uint64_t Dev = RT.map(P);
  const AllocUnitInfo *Info = RT.lookup(P);
  ASSERT_NE(Info, nullptr);
  // Pick two pool peers that are not the unit's home.
  unsigned A = Info->HomeDevice == 0 ? 1 : 0;
  unsigned B = Info->HomeDevice == 3 ? 2 : 3;
  EXPECT_FALSE(RT.hasReplicas());
  EXPECT_EQ(RT.getNumValidReplicas(P), 0u);

  RT.replicateForDevice(Dev, A);
  RT.replicateForDevice(Dev, B);
  EXPECT_TRUE(RT.hasReplicas());
  EXPECT_EQ(RT.getNumValidReplicas(P), 2u);
  // Replicating the home device is a no-op, not a third replica.
  RT.replicateForDevice(Dev, Info->HomeDevice);
  EXPECT_EQ(RT.getNumValidReplicas(P), 2u);

  // A host write bumps the unit's content version: every peer replica
  // goes stale at once (cross-device invalidation).
  RT.noteHostWrite(P + 17);
  EXPECT_EQ(RT.getNumValidReplicas(P), 0u);

  // Re-replication refreshes the stale copy and is valid again.
  RT.replicateForDevice(Dev, A);
  EXPECT_EQ(RT.getNumValidReplicas(P), 1u);
  RT.release(P);
}

TEST_F(PoolRuntimeTest, ReplicationEstimateSplitsStaleFromMissing) {
  uint64_t P = Host.allocate(512);
  RT.notifyHeapAlloc(P, 512);
  uint64_t Dev = RT.map(P);
  // Nothing replicated yet: all three peers are missing, none stale.
  CGCMRuntime::ReplicationEstimate E = RT.estimateReplicationCycles(Dev, 4);
  EXPECT_DOUBLE_EQ(E.StaleCycles, 0.0);
  EXPECT_DOUBLE_EQ(E.MissingCycles, 3.0 * TM.p2pCopyCycles(512));

  const AllocUnitInfo *Info = RT.lookup(P);
  ASSERT_NE(Info, nullptr);
  unsigned A = Info->HomeDevice == 0 ? 1 : 0;
  RT.replicateForDevice(Dev, A);
  RT.noteHostWrite(P);
  // One stale replica (it exists but the version moved on), two still
  // missing: the gate prices the former in full, amortizes the latter.
  E = RT.estimateReplicationCycles(Dev, 4);
  EXPECT_DOUBLE_EQ(E.StaleCycles, TM.p2pCopyCycles(512));
  EXPECT_DOUBLE_EQ(E.MissingCycles, 2.0 * TM.p2pCopyCycles(512));
  RT.release(P);
}

//===----------------------------------------------------------------------===//
// Property sweeps
//===----------------------------------------------------------------------===//

class RuntimePropertyTest : public RuntimeTest,
                            public ::testing::WithParamInterface<unsigned> {};

TEST_F(RuntimeTest, ManyUnitsLookupConsistency) {
  // Greatest-LTE over a dense population of units.
  std::vector<std::pair<uint64_t, uint64_t>> Units;
  std::mt19937 Rng(42);
  for (unsigned I = 0; I != 200; ++I) {
    uint64_t Size = 16 + (Rng() % 512);
    Units.push_back({heapUnit(Size), Size});
  }
  for (const auto &[Base, Size] : Units) {
    for (uint64_t Off : {uint64_t(0), Size / 2, Size - 1}) {
      const AllocUnitInfo *Info = RT.lookup(Base + Off);
      ASSERT_NE(Info, nullptr);
      EXPECT_EQ(Info->Base, Base);
      EXPECT_EQ(Info->Size, Size);
    }
  }
}

//===----------------------------------------------------------------------===//
// Overhead accounting: entry points charge only validated, effective calls
// (a failed or no-op call must not inflate the modeled runtime overhead).
//===----------------------------------------------------------------------===//

TEST_F(RuntimeTest, NoOpUnmapIsNotCharged) {
  uint64_t P = heapUnit(128);
  uint64_t Before = Stats.RuntimeCalls;
  double CyclesBefore = Stats.RuntimeCycles;
  // The unit is tracked but not mapped: unmap has nothing to copy back
  // and must cost nothing.
  RT.unmap(P);
  EXPECT_EQ(Stats.RuntimeCalls, Before);
  EXPECT_EQ(Stats.RuntimeCycles, CyclesBefore);
}

TEST_F(RuntimeTest, EffectiveCallsChargeExactlyOnce) {
  uint64_t P = heapUnit(128);
  uint64_t Base = Stats.RuntimeCalls;
  RT.map(P);
  EXPECT_EQ(Stats.RuntimeCalls, Base + 1);
  RT.onKernelLaunch();
  RT.unmap(P);
  EXPECT_EQ(Stats.RuntimeCalls, Base + 2);
  RT.release(P);
  EXPECT_EQ(Stats.RuntimeCalls, Base + 3);
}

TEST_F(RuntimeTest, ReallocChargesOneCall) {
  uint64_t P = heapUnit(64);
  uint64_t Before = Stats.RuntimeCalls;
  uint64_t Q = Host.reallocate(P, 256);
  // One user-level realloc is one runtime call, not a charge per internal
  // free/alloc step.
  RT.notifyHeapRealloc(P, Q, 256);
  EXPECT_EQ(Stats.RuntimeCalls, Before + 1);
  ASSERT_NE(RT.lookup(Q), nullptr);
  EXPECT_EQ(RT.lookup(P), nullptr);
}

TEST_F(RuntimeTest, EpochSuppressedCopiesAreCounted) {
  uint64_t P = heapUnit(256);
  RT.map(P);
  RT.onKernelLaunch();
  uint64_t Suppressed = Stats.EpochSuppressedCopies;
  RT.unmap(P); // Copies back; epoch becomes current.
  RT.unmap(P); // Epoch proves the host copy current: suppressed.
  EXPECT_EQ(Stats.EpochSuppressedCopies, Suppressed + 1);
  RT.release(P);
}

TEST_P(RuntimePropertyTest, RandomMapReleaseSequencesBalance) {
  // Invariant: after any balanced sequence of map/release (with kernel
  // launches and unmaps sprinkled in), no device memory survives and the
  // host data reflects the last device state.
  std::mt19937 Rng(GetParam());
  constexpr unsigned NumUnits = 8;
  uint64_t Units[NumUnits];
  int Refs[NumUnits] = {0};
  for (unsigned I = 0; I != NumUnits; ++I)
    Units[I] = heapUnit(64 + I * 16);

  for (unsigned Step = 0; Step != 300; ++Step) {
    unsigned U = Rng() % NumUnits;
    switch (Rng() % 4) {
    case 0:
      RT.map(Units[U] + Rng() % 32);
      ++Refs[U];
      break;
    case 1:
      if (Refs[U] > 0) {
        RT.release(Units[U]);
        --Refs[U];
      }
      break;
    case 2:
      RT.unmap(Units[U]);
      break;
    case 3:
      RT.onKernelLaunch();
      break;
    }
    // The runtime's view matches our shadow refcounts.
    unsigned Mapped = 0;
    for (int R : Refs)
      if (R > 0)
        ++Mapped;
    EXPECT_EQ(RT.getNumMappedUnits(), Mapped);
  }
  for (unsigned U = 0; U != NumUnits; ++U)
    while (Refs[U]-- > 0)
      RT.release(Units[U]);
  EXPECT_EQ(RT.getNumMappedUnits(), 0u);
  EXPECT_EQ(Device.getMemory().getNumLiveAllocations(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RuntimePropertyTest,
                         ::testing::Values(1u, 7u, 13u, 99u, 12345u));

} // namespace
