//===- tests/ServerTests.cpp - Multi-tenant runtime server tests ------------===//
//
// Part of the CGCM reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The runtime server (docs/Server.md): sharded residency index
/// bookkeeping and LRU eviction order, session mirroring and quota
/// enforcement, the deterministic latency post-pass, interleaved
/// API-fuzz sessions, and the deterministic-seeded concurrency stress —
/// N threads of mixed workloads, every output bit-identical to its solo
/// run and every session auditor-clean.
///
//===----------------------------------------------------------------------===//

#include "fuzz/ApiFuzz.h"
#include "fuzz/ProgGen.h"
#include "server/SessionManager.h"
#include "workloads/Runner.h"
#include "workloads/Workloads.h"

#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

using namespace cgcm;

namespace {

TEST(ResidencyIndex, LeaseBookkeeping) {
  ResidencyIndex Idx(4);
  SessionAccount A;
  Idx.noteResident(A, 1, 0x1000, 256, 0);
  Idx.noteResident(A, 1, 0x2000, 512, 0);
  EXPECT_EQ(Idx.residentBytes(), 768u);
  EXPECT_EQ(Idx.leaseCount(), 2u);
  EXPECT_EQ(A.ResidentBytes.load(), 768u);
  EXPECT_EQ(A.LeasesCreated.load(), 2u);

  // Referenced leases never evict.
  EXPECT_EQ(Idx.evictIdle(~0ull), 0u);

  // Park one idle; it becomes the only evictable lease.
  Idx.dropRef(1, 0x1000);
  EXPECT_EQ(Idx.evictIdle(1), 256u);
  EXPECT_EQ(Idx.residentBytes(), 512u);
  EXPECT_EQ(A.LeasesEvicted.load(), 1u);
  EXPECT_EQ(A.BytesEvicted.load(), 256u);

  // Explicit drop retires the device copy.
  Idx.drop(A, 1, 0x2000);
  EXPECT_EQ(Idx.residentBytes(), 0u);
  EXPECT_EQ(Idx.leaseCount(), 0u);
  EXPECT_EQ(A.ResidentBytes.load(), 0u);
}

TEST(ResidencyIndex, GlobalLeaseRevival) {
  // A global parked at zero references keeps its lease; the next map
  // generation revives it instead of double-counting the bytes.
  ResidencyIndex Idx(4);
  SessionAccount A;
  Idx.noteResident(A, 7, 0x5000, 1024, 0);
  Idx.dropRef(7, 0x5000);
  Idx.noteResident(A, 7, 0x5000, 1024, 0);
  EXPECT_EQ(Idx.residentBytes(), 1024u);
  EXPECT_EQ(Idx.leaseCount(), 1u);
  EXPECT_EQ(A.LeasesCreated.load(), 1u);
  // Revived back to one reference: not evictable.
  EXPECT_EQ(Idx.evictIdle(~0ull), 0u);
}

TEST(ResidencyIndex, EvictionIsGlobalLRU) {
  ResidencyIndex Idx(4);
  SessionAccount A, B;
  Idx.noteResident(A, 1, 0x1000, 100, 0);
  Idx.noteResident(B, 2, 0x2000, 100, 0);
  Idx.noteResident(A, 1, 0x3000, 100, 0);
  Idx.dropRef(1, 0x1000);
  Idx.dropRef(2, 0x2000);
  Idx.dropRef(1, 0x3000);
  // Touch the oldest: a fresh map generation moves it to the front.
  Idx.noteResident(A, 1, 0x1000, 100, 0);
  Idx.dropRef(1, 0x1000);

  std::vector<std::pair<uint32_t, uint64_t>> Order = Idx.idleLeasesLRU();
  ASSERT_EQ(Order.size(), 3u);
  EXPECT_EQ(Order[0].second, 0x2000u); // Oldest untouched.
  EXPECT_EQ(Order[1].second, 0x3000u);
  EXPECT_EQ(Order[2].second, 0x1000u); // Most recently revived.

  // One-byte demand evicts exactly the LRU victim.
  EXPECT_EQ(Idx.evictIdle(1), 100u);
  EXPECT_EQ(Idx.idleLeasesLRU().front().second, 0x3000u);
  EXPECT_EQ(B.LeasesEvicted.load(), 1u);

  // Per-session eviction only considers that tenant's leases.
  SessionAccount C;
  Idx.noteResident(C, 3, 0x9000, 100, 0);
  Idx.dropRef(3, 0x9000);
  EXPECT_EQ(Idx.evictIdle(~0ull, 3), 100u);
  EXPECT_EQ(C.LeasesEvicted.load(), 1u);
  EXPECT_EQ(Idx.leaseCount(), 2u); // Session 1's leases untouched.
}

TEST(ResidencyIndex, SweepReportsReferencedLeaks) {
  ResidencyIndex Idx(4);
  SessionAccount A;
  Idx.noteResident(A, 1, 0x1000, 64, 0);
  Idx.noteResident(A, 1, 0x2000, 64, 0);
  Idx.dropRef(1, 0x2000);
  ResidencyIndex::SweepResult R = Idx.dropSession(A, 1);
  EXPECT_EQ(R.Leases, 2u);
  EXPECT_EQ(R.Bytes, 128u);
  EXPECT_EQ(R.Referenced, 1u); // 0x1000 still held a reference.
  EXPECT_EQ(Idx.residentBytes(), 0u);
  EXPECT_EQ(A.ResidentBytes.load(), 0u);
}

TEST(Session, MirrorsRuntimeAndSweepsClean) {
  const Workload *W = nullptr;
  for (const Workload &Cand : getWorkloads())
    if (Cand.Name == "atax")
      W = &Cand;
  ASSERT_NE(W, nullptr);
  WorkloadRun Solo = runWorkload(*W, BenchConfig::CGCMOptimized);

  ResidencyIndex Idx;
  ServerQuotas Q;
  Session S(1, Idx, Q);
  ServerResponse R =
      S.run({W->Name, W->Source, BenchConfig::CGCMOptimized}, RunnerOptions());
  EXPECT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.Output, Solo.Output);
  EXPECT_EQ(R.ServiceCycles, Solo.TotalCycles);
  EXPECT_GT(R.LeasesCreated, 0u);
  EXPECT_GT(R.PeakResidentBytes, 0u);
  EXPECT_GT(R.KernelLaunches, 0u);
  EXPECT_EQ(S.requestEpoch(), 1u);
  // Everything returned: the index is empty and the account settled.
  EXPECT_EQ(Idx.leaseCount(), 0u);
  EXPECT_EQ(Idx.residentBytes(), 0u);
  EXPECT_EQ(S.account().ResidentBytes.load(), 0u);
}

TEST(Session, QuotaTriggersEvictionWithoutChangingOutput) {
  // A quota far below every working set. Eviction needs an *idle* lease
  // mid-run (a global parked at zero references between map
  // generations), which only some workloads produce — so sweep the
  // whole suite: every output must survive the pressure bit-identical,
  // and at least one workload must actually exercise the evictor.
  ResidencyIndex Idx;
  ServerQuotas Q;
  Q.SessionDeviceBytes = 4 << 10;
  Q.GlobalDeviceBytes = 8 << 10;
  uint32_t Sid = 0;
  for (const Workload &W : getWorkloads()) {
    WorkloadRun Solo = runWorkload(W, BenchConfig::CGCMOptimized);
    Session S(++Sid, Idx, Q);
    ServerResponse R =
        S.run({W.Name, W.Source, BenchConfig::CGCMOptimized}, RunnerOptions());
    EXPECT_TRUE(R.Ok) << W.Name << ": " << R.Error;
    EXPECT_EQ(R.Output, Solo.Output) << W.Name;
    // Eviction is pure capacity accounting: modeled cycles untouched.
    EXPECT_EQ(R.ServiceCycles, Solo.TotalCycles) << W.Name;
  }
  EXPECT_GT(Idx.evictions(), 0u);
  EXPECT_GT(Idx.evictedBytes(), 0u);
  EXPECT_EQ(Idx.leaseCount(), 0u);
  EXPECT_EQ(Idx.residentBytes(), 0u);
}

TEST(SessionManager, DeterministicLatencyModel) {
  // Hand-checkable batch admission: 4 requests, one batch, 2 lanes.
  ServerConfig C;
  C.Threads = 2;
  C.BatchSize = 4;
  C.ArrivalSpacingCycles = 10;
  C.AdmissionCycles = 5;
  std::vector<ServerResponse> Rs(4);
  for (auto &R : Rs)
    R.ServiceCycles = 100;
  SessionManager::computeLatencies(Rs, C);
  // The batch admits when its last member arrived (t=30) plus the
  // amortized admission cost (5): both lanes start at 35.
  EXPECT_DOUBLE_EQ(Rs[0].StartCycles, 35);
  EXPECT_DOUBLE_EQ(Rs[1].StartCycles, 35);
  // The second wave queues behind the first on each lane.
  EXPECT_DOUBLE_EQ(Rs[2].StartCycles, 135);
  EXPECT_DOUBLE_EQ(Rs[3].StartCycles, 135);
  EXPECT_DOUBLE_EQ(Rs[0].LatencyCycles, 135);
  EXPECT_DOUBLE_EQ(Rs[3].LatencyCycles, 205); // 235 done - 30 arrival.

  // Re-running the post-pass reproduces itself bit for bit.
  std::vector<ServerResponse> Again = Rs;
  SessionManager::computeLatencies(Again, C);
  for (size_t I = 0; I < Rs.size(); ++I) {
    EXPECT_DOUBLE_EQ(Again[I].ArrivalCycles, Rs[I].ArrivalCycles);
    EXPECT_DOUBLE_EQ(Again[I].StartCycles, Rs[I].StartCycles);
    EXPECT_DOUBLE_EQ(Again[I].LatencyCycles, Rs[I].LatencyCycles);
  }
}

TEST(SessionManager, ConcurrencyStressOutputIdentity) {
  // The deterministic-seeded stress: 8 worker threads over a mixed
  // request stream (paper workloads + generated programs), every
  // output bit-identical to its solo run, every session audit-clean,
  // and the shared index drained at the end.
  std::vector<std::pair<std::string, std::string>> Programs;
  unsigned Kept = 0;
  for (const Workload &W : getWorkloads()) {
    if (++Kept > 6)
      break;
    Programs.push_back({W.Name, W.Source});
  }
  for (uint64_t Seed = 90; Seed < 93; ++Seed) {
    ProgDesc D = generateProgram(Seed);
    Programs.push_back({"fuzz-" + std::to_string(Seed), D.render()});
  }

  std::map<std::string, std::string> SoloOutput;
  for (const auto &P : Programs) {
    Workload W;
    W.Name = P.first;
    W.Source = P.second;
    SoloOutput[P.first] =
        runWorkload(W, BenchConfig::CGCMOptimized).Output;
  }

  ServerConfig C;
  C.Threads = 8;
  C.BatchSize = 4;
  C.Quotas.SessionDeviceBytes = 64 << 10; // Tight: eviction live.
  C.Quotas.GlobalDeviceBytes = 256 << 10;
  SessionManager Mgr(C);
  std::vector<ServerRequest> Reqs;
  uint64_t Rng = 12345;
  for (unsigned I = 0; I < 64; ++I) {
    Rng = Rng * 6364136223846793005ull + 1442695040888963407ull;
    const auto &P = Programs[(Rng >> 33) % Programs.size()];
    Reqs.push_back({P.first, P.second, BenchConfig::CGCMOptimized});
  }
  std::vector<ServerResponse> Rs = Mgr.replay(Reqs);
  ASSERT_EQ(Rs.size(), Reqs.size());
  for (size_t I = 0; I < Rs.size(); ++I) {
    EXPECT_TRUE(Rs[I].Ok) << Reqs[I].Name << ": " << Rs[I].Error;
    EXPECT_EQ(Rs[I].Output, SoloOutput[Reqs[I].Name])
        << "session " << I + 1 << " (" << Reqs[I].Name
        << ") diverged from solo execution";
  }
  EXPECT_EQ(Mgr.index().leaseCount(), 0u);
  EXPECT_EQ(Mgr.index().residentBytes(), 0u);

  ServerStats S = Mgr.summarize(Rs);
  EXPECT_EQ(S.Requests, 64u);
  EXPECT_EQ(S.Failures, 0u);
  EXPECT_GT(S.P50LatencyCycles, 0);
  EXPECT_GE(S.P99LatencyCycles, S.P50LatencyCycles);
  EXPECT_GT(S.RequestsPerMegacycle, 0);
}

TEST(SessionManager, ReplayLatenciesIndependentOfInterleave) {
  // Two live replays of the same request stream: thread scheduling
  // differs, modeled numbers must not.
  std::vector<ServerRequest> Reqs;
  const Workload &W = getWorkloads().front();
  for (unsigned I = 0; I < 12; ++I)
    Reqs.push_back({W.Name, W.Source, BenchConfig::CGCMOptimized});

  ServerConfig C;
  C.Threads = 4;
  auto Run = [&] {
    SessionManager Mgr(C);
    return Mgr.replay(Reqs);
  };
  std::vector<ServerResponse> A = Run(), B = Run();
  ASSERT_EQ(A.size(), B.size());
  for (size_t I = 0; I < A.size(); ++I) {
    EXPECT_EQ(A[I].Output, B[I].Output);
    EXPECT_DOUBLE_EQ(A[I].ServiceCycles, B[I].ServiceCycles);
    EXPECT_DOUBLE_EQ(A[I].LatencyCycles, B[I].LatencyCycles);
  }
}

TEST(MultiSessionFuzz, InterleavedSessionsStayClean) {
  for (uint64_t Seed = 0; Seed < 6; ++Seed) {
    MultiSessionFuzzResult R = runApiFuzzMultiSession(Seed, 200);
    EXPECT_FALSE(R.Failed) << "seed " << Seed << ":\n" << R.Failure;
    EXPECT_GT(R.A.Steps, 0u);
    EXPECT_GT(R.B.Steps, 0u);
    EXPECT_TRUE(R.A.Audit.clean());
    EXPECT_TRUE(R.B.Audit.clean());
  }
}

} // namespace
