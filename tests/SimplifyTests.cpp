//===- tests/SimplifyTests.cpp - Constant folding / DCE tests ------------------===//
//
// Part of the CGCM reproduction project.
//
//===----------------------------------------------------------------------===//

#include "exec/Machine.h"
#include "frontend/IRGen.h"
#include "transform/Mem2Reg.h"
#include "transform/Simplify.h"

#include <gtest/gtest.h>

using namespace cgcm;

namespace {

unsigned instCount(Function &F) { return F.instructions().size(); }

unsigned countPhis(Function &F) {
  unsigned N = 0;
  for (Instruction *I : F.instructions())
    if (isa<PhiInst>(I))
      ++N;
  return N;
}

TEST(Simplify, FoldsConstantArithmetic) {
  auto M = compileMiniC("int main() { return (2 + 3) * 4 - 6 / 2; }", "cf");
  Function *F = M->getFunction("main");
  promoteAllocasToRegisters(*F);
  SimplifyStats S = simplifyFunction(*F);
  EXPECT_GE(S.ConstantsFolded, 3u);
  // Only the return remains.
  ASSERT_EQ(instCount(*F), 1u);
  auto *Ret = cast<RetInst>(F->instructions()[0]);
  EXPECT_EQ(cast<ConstantInt>(Ret->getReturnValue())->getValue(), 17);
}

TEST(Simplify, FoldsFloatingPointWithFloatRounding) {
  auto M = compileMiniC(R"(
    int main() {
      float f = 0.1;
      double d = f * 2.0;
      return (int)(d * 100.0);
    }
  )",
                        "cff");
  Function *F = M->getFunction("main");
  promoteAllocasToRegisters(*F);
  simplifyFunction(*F);
  // Constant-folded result must equal the interpreted result.
  Machine Mach;
  Mach.loadModule(*M);
  EXPECT_EQ(Mach.run(), 20);
}

TEST(Simplify, KeepsDivisionByZeroForTheTrap) {
  auto M = compileMiniC("int main() { int z = 0; return 7 / z; }", "dbz");
  Function *F = M->getFunction("main");
  promoteAllocasToRegisters(*F);
  simplifyFunction(*F);
  bool HasDiv = false;
  for (Instruction *I : F->instructions())
    if (auto *B = dyn_cast<BinOpInst>(I))
      if (B->getOp() == BinOpInst::Op::SDiv)
        HasDiv = true;
  EXPECT_TRUE(HasDiv);
}

TEST(Simplify, SimplifiesConstantBranchesAndRemovesDeadBlocks) {
  auto M = compileMiniC(R"(
    int main() {
      int x = 5;
      if (x > 3)
        return 1;
      return 2;
    }
  )",
                        "br");
  Function *F = M->getFunction("main");
  promoteAllocasToRegisters(*F);
  SimplifyStats S = simplifyFunction(*F);
  EXPECT_GE(S.BranchesSimplified, 1u);
  EXPECT_GE(S.BlocksRemoved, 1u);
  Machine Mach;
  Mach.loadModule(*M);
  EXPECT_EQ(Mach.run(), 1);
}

TEST(Simplify, AlgebraicIdentities) {
  auto M = compileMiniC(R"(
    int main(void);
    int f(int x) { return (x + 0) * 1; }
    int main() { return f(9); }
  )",
                        "ident");
  Function *F = M->getFunction("f");
  promoteAllocasToRegisters(*F);
  simplifyFunction(*F);
  // x + 0 and * 1 both fold away: only the return remains.
  EXPECT_EQ(instCount(*F), 1u);
}

TEST(Simplify, RemovesDeadComputation) {
  auto M = compileMiniC(R"(
    int main() {
      int unused = 3 * 7;
      double alsoUnused = 1.5 * 2.0;
      return 4;
    }
  )",
                        "dce");
  Function *F = M->getFunction("main");
  promoteAllocasToRegisters(*F);
  SimplifyStats S = simplifyFunction(*F);
  EXPECT_EQ(instCount(*F), 1u);
  EXPECT_GT(S.ConstantsFolded + S.DeadInstructionsRemoved, 0u);
}

TEST(Simplify, KeepsSideEffects) {
  auto M = compileMiniC(R"(
    double g[4];
    int main() {
      g[1] = 2.0;
      print_i64(5);
      return 0;
    }
  )",
                        "se");
  Function *F = M->getFunction("main");
  promoteAllocasToRegisters(*F);
  simplifyFunction(*F);
  unsigned Stores = 0, Calls = 0;
  for (Instruction *I : F->instructions()) {
    if (isa<StoreInst>(I))
      ++Stores;
    if (isa<CallInst>(I))
      ++Calls;
  }
  EXPECT_EQ(Stores, 1u);
  EXPECT_EQ(Calls, 1u);
}

TEST(Simplify, UniformPhiCollapses) {
  auto M = compileMiniC(R"(
    int main() {
      int x = 7;
      int y;
      if (x > 0)
        y = 3;
      else
        y = 3;
      return y;
    }
  )",
                        "phi");
  Function *F = M->getFunction("main");
  promoteAllocasToRegisters(*F);
  simplifyFunction(*F);
  EXPECT_EQ(countPhis(*F), 0u);
  Machine Mach;
  Mach.loadModule(*M);
  EXPECT_EQ(Mach.run(), 3);
}

} // namespace
