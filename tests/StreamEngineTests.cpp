//===- tests/StreamEngineTests.cpp - Async transfer engine tests -------------===//
//
// Part of the CGCM reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Deterministic-clock regressions for the asynchronous transfer engine
/// (docs/TransferEngine.md): exact-cycle checks of the coalescing and
/// overlap arithmetic against the analytic model, fence placement,
/// host-stall accounting, the sync-path bit-identity guarantee, and the
/// end-to-end output equivalence + trace-lane contract through Machine.
///
//===----------------------------------------------------------------------===//

#include "exec/Machine.h"
#include "frontend/IRGen.h"
#include "gpusim/StreamEngine.h"
#include "transform/Pipeline.h"

#include <gtest/gtest.h>

#include <sstream>

using namespace cgcm;

namespace {

class StreamEngineTest : public ::testing::Test {
protected:
  TimingModel TM;
  ExecStats Stats;
  StreamEngine Eng{TM, Stats};

  void asyncConfig(unsigned Streams, bool Coalesce = true) {
    StreamEngineConfig C;
    C.Async = true;
    C.Streams = Streams;
    C.Coalesce = Coalesce;
    Eng.configure(C);
  }

  /// The analytic copy duration (docs/TransferEngine.md performance
  /// model), spelled out so a model change breaks these tests loudly.
  double copyCycles(uint64_t Bytes, bool Pinned, bool Head) const {
    double D = static_cast<double>(Bytes) / TM.HtoDBytesPerCycle;
    if (!Pinned)
      D += static_cast<double>(Bytes) / TM.PageableStagingBytesPerCycle;
    if (Head)
      D += TM.TransferLatency;
    return D;
  }
};

//===----------------------------------------------------------------------===//
// Synchronous path: bit-identical to the legacy model
//===----------------------------------------------------------------------===//

TEST_F(StreamEngineTest, SyncPathChargesLegacyCostsAndNeverSetsWallClock) {
  auto R = Eng.transferHtoD(4096, /*Pinned=*/false, 0x1000);
  EXPECT_DOUBLE_EQ(R.Duration, TM.transferCycles(4096));
  EXPECT_EQ(R.Lane, LaneHost);
  EXPECT_FALSE(R.Coalesced);
  EXPECT_DOUBLE_EQ(Stats.CommCycles, TM.transferCycles(4096));
  EXPECT_EQ(Stats.AsyncTransfers, 0u);
  EXPECT_EQ(Stats.DmaBatches, 1u); // Every sync copy is its own batch.
  EXPECT_EQ(Stats.CoalescedTransfers, 0u);

  double KStart = Eng.kernelLaunch(1000.0);
  EXPECT_DOUBLE_EQ(KStart, TM.transferCycles(4096)); // Host timeline.
  EXPECT_DOUBLE_EQ(Eng.hostNow(), Stats.totalCycles());

  Eng.drain(); // No-op when synchronous: the wall clock stays unset.
  EXPECT_DOUBLE_EQ(Stats.WallCycles, 0.0);
  EXPECT_DOUBLE_EQ(Stats.wallCycles(), Stats.totalCycles());
  EXPECT_DOUBLE_EQ(Stats.StallCycles, 0.0);
  EXPECT_EQ(Stats.HostSyncs, 0u);
}

//===----------------------------------------------------------------------===//
// Coalescing arithmetic
//===----------------------------------------------------------------------===//

TEST_F(StreamEngineTest, CoalescedFollowerPaysNoTransferLatency) {
  asyncConfig(4);
  auto A = Eng.transferHtoD(1024, /*Pinned=*/true, 0x1000);
  EXPECT_DOUBLE_EQ(A.Start, 0.0);
  EXPECT_DOUBLE_EQ(A.Duration, copyCycles(1024, true, /*Head=*/true));
  EXPECT_FALSE(A.Coalesced);

  // Issued while the batch is still in flight: rides the descriptor
  // chain — same stream, back-to-back start, no fixed latency.
  auto B = Eng.transferHtoD(2048, /*Pinned=*/true, 0x2000);
  EXPECT_TRUE(B.Coalesced);
  EXPECT_EQ(B.Stream, A.Stream);
  EXPECT_DOUBLE_EQ(B.Start, A.Start + A.Duration);
  EXPECT_DOUBLE_EQ(B.Duration, copyCycles(2048, true, /*Head=*/false));

  EXPECT_EQ(Stats.AsyncTransfers, 2u);
  EXPECT_EQ(Stats.DmaBatches, 1u);
  EXPECT_EQ(Stats.CoalescedTransfers, 1u);
}

TEST_F(StreamEngineTest, NoCoalesceMakesEveryCopyABatchHead) {
  asyncConfig(4, /*Coalesce=*/false);
  auto A = Eng.transferHtoD(1024, true, 0x1000);
  auto B = Eng.transferHtoD(1024, true, 0x2000);
  EXPECT_FALSE(B.Coalesced);
  EXPECT_NE(B.Stream, A.Stream); // Round-robin across streams.
  EXPECT_DOUBLE_EQ(B.Duration, copyCycles(1024, true, /*Head=*/true));
  // Batch heads still serialize on the single HtoD copy engine.
  EXPECT_DOUBLE_EQ(B.Start, A.Start + A.Duration);
  EXPECT_EQ(Stats.DmaBatches, 2u);
  EXPECT_EQ(Stats.CoalescedTransfers, 0u);
}

TEST_F(StreamEngineTest, OppositeDirectionCopyBreaksTheBatch) {
  asyncConfig(4);
  Eng.transferHtoD(1024, true, 0x1000);
  Eng.transferDtoH(1024, true, 0x9000); // Closes the HtoD window.
  auto C = Eng.transferHtoD(1024, true, 0x2000);
  EXPECT_FALSE(C.Coalesced);
  EXPECT_EQ(Stats.DmaBatches, 3u);
  EXPECT_EQ(Stats.CoalescedTransfers, 0u);
}

TEST_F(StreamEngineTest, KernelLaunchClosesTheCoalescingWindow) {
  asyncConfig(4);
  Eng.transferHtoD(1024, true, 0x1000);
  Eng.kernelLaunch(500.0);
  auto B = Eng.transferHtoD(1024, true, 0x2000);
  EXPECT_FALSE(B.Coalesced);
  EXPECT_EQ(Stats.DmaBatches, 2u);
}

TEST_F(StreamEngineTest, PageableCopyPaysTheStagingTerm) {
  asyncConfig(2, /*Coalesce=*/false);
  auto Pinned = Eng.transferHtoD(4096, /*Pinned=*/true, 0x1000);
  auto Pageable = Eng.transferHtoD(4096, /*Pinned=*/false, 0x9000);
  EXPECT_NEAR(Pageable.Duration - Pinned.Duration,
              4096.0 / TM.PageableStagingBytesPerCycle, 1e-9);
}

//===----------------------------------------------------------------------===//
// Fences and overlap
//===----------------------------------------------------------------------===//

TEST_F(StreamEngineTest, KernelFencesOutstandingHtoDTraffic) {
  asyncConfig(4);
  auto A = Eng.transferHtoD(4096, true, 0x1000);
  double Start = Eng.kernelLaunch(1000.0);
  // The kernel's inputs may still be in flight: it starts at the HtoD
  // completion frontier, not at the host's issue time.
  EXPECT_DOUBLE_EQ(Start, A.Start + A.Duration);
  // The host itself never blocked for either operation.
  EXPECT_DOUBLE_EQ(Stats.StallCycles, 0.0);
  EXPECT_EQ(Stats.HostSyncs, 0u);
}

TEST_F(StreamEngineTest, DtoHFencesTheLatestKernel) {
  asyncConfig(4);
  auto Up = Eng.transferHtoD(4096, true, 0x1000);
  double KStart = Eng.kernelLaunch(1000.0);
  auto Down = Eng.transferDtoH(4096, true, 0x1000);
  // The copy reads what the kernel wrote: it starts at kernel end.
  EXPECT_DOUBLE_EQ(Down.Start, KStart + 1000.0);
  EXPECT_GT(Down.Start, Up.Start + Up.Duration);
}

TEST_F(StreamEngineTest, OppositeDirectionsOverlapWithTwoStreams) {
  asyncConfig(2, /*Coalesce=*/false);
  auto Up = Eng.transferHtoD(4096, true, 0x1000);
  auto Down = Eng.transferDtoH(4096, true, 0x9000);
  // Separate copy engines: both start at issue time zero.
  EXPECT_DOUBLE_EQ(Up.Start, 0.0);
  EXPECT_DOUBLE_EQ(Down.Start, 0.0);

  Eng.drain();
  // Serial busy time is 2 copies; the wall clock is max of the lanes, so
  // the overlap saving is exactly one copy's duration.
  EXPECT_DOUBLE_EQ(Stats.WallCycles, std::max(Up.Duration, Down.Duration));
  EXPECT_DOUBLE_EQ(Stats.overlapSavedCycles(),
                   std::min(Up.Duration, Down.Duration));
}

TEST_F(StreamEngineTest, SingleStreamSerializesEverything) {
  asyncConfig(1, /*Coalesce=*/false);
  auto Up = Eng.transferHtoD(4096, true, 0x1000);
  auto Down = Eng.transferDtoH(4096, true, 0x9000);
  // One CUDA stream's FIFO: the DtoH waits for the HtoD.
  EXPECT_DOUBLE_EQ(Down.Start, Up.Start + Up.Duration);
  double KStart = Eng.kernelLaunch(500.0);
  EXPECT_DOUBLE_EQ(KStart, Down.Start + Down.Duration);
  Eng.drain();
  // Fully serial: no overlap savings at all.
  EXPECT_DOUBLE_EQ(Stats.overlapSavedCycles(), 0.0);
}

//===----------------------------------------------------------------------===//
// Host stalls (true use points)
//===----------------------------------------------------------------------===//

TEST_F(StreamEngineTest, HostReadDoesNotStallOnInFlightHtoD) {
  asyncConfig(4);
  Eng.transferHtoD(4096, true, 0x1000);
  // The copy only *reads* the host range; a concurrent host read is safe.
  Eng.hostAccess(0x1000, 8, /*IsWrite=*/false);
  EXPECT_DOUBLE_EQ(Stats.StallCycles, 0.0);
  EXPECT_EQ(Stats.HostSyncs, 0u);
}

TEST_F(StreamEngineTest, HostWriteStallsUntilInFlightHtoDCompletes) {
  asyncConfig(4);
  auto A = Eng.transferHtoD(4096, true, 0x1000);
  // Overwriting the source of an in-flight copy must wait for it.
  Eng.hostAccess(0x1000, 8, /*IsWrite=*/true);
  EXPECT_DOUBLE_EQ(Stats.StallCycles, A.Start + A.Duration);
  EXPECT_EQ(Stats.HostSyncs, 1u);
  // The stall advanced the host clock; a second touch is free.
  Eng.hostAccess(0x1000, 8, /*IsWrite=*/true);
  EXPECT_EQ(Stats.HostSyncs, 1u);
}

TEST_F(StreamEngineTest, HostReadStallsOnInFlightDtoHLanding) {
  asyncConfig(4);
  auto A = Eng.transferDtoH(4096, true, 0x1000);
  // Disjoint range: no conflict, no stall.
  Eng.hostAccess(0x9000, 8, /*IsWrite=*/false);
  EXPECT_EQ(Stats.HostSyncs, 0u);
  // Reading the landing zone blocks until the copy completes.
  Eng.hostAccess(0x1000 + 4000, 8, /*IsWrite=*/false);
  EXPECT_DOUBLE_EQ(Stats.StallCycles, A.Start + A.Duration);
  EXPECT_EQ(Stats.HostSyncs, 1u);
}

TEST_F(StreamEngineTest, DrainRecordsTheOverlapAwareWallClock) {
  asyncConfig(4);
  auto A = Eng.transferHtoD(65536, /*Pinned=*/false, 0x1000);
  EXPECT_TRUE(Eng.hasPendingHostRanges());
  Eng.drain();
  EXPECT_FALSE(Eng.hasPendingHostRanges());
  EXPECT_DOUBLE_EQ(Stats.WallCycles, A.Start + A.Duration);
  EXPECT_DOUBLE_EQ(Stats.wallCycles(), Stats.WallCycles);
  EXPECT_EQ(Stats.HostSyncs, 1u); // The drain itself blocked the host.
}

//===----------------------------------------------------------------------===//
// Peer-to-peer copies (docs/MultiGPU.md)
//===----------------------------------------------------------------------===//

TEST_F(StreamEngineTest, P2PDirectCopyChargesExactPeerLaneCycles) {
  ASSERT_TRUE(TM.P2PEnabled);
  auto R = Eng.transferP2P(4096);
  // Direct peer lane: latency plus bytes over the peer-link bandwidth,
  // spelled out so a model change breaks this loudly.
  EXPECT_DOUBLE_EQ(R.Duration, TM.P2PLatency + 4096.0 / TM.P2PBytesPerCycle);
  EXPECT_EQ(R.Lane, LaneHost); // Synchronous regime: host blocks.
}

TEST_F(StreamEngineTest, P2PStagedFallbackCostsTwoHostHopsAndLosesToDirect) {
  TimingModel Staged;
  Staged.P2PEnabled = false;
  ExecStats S2;
  StreamEngine E2{Staged, S2};
  auto R = E2.transferP2P(4096);
  // No peer access: the copy bounces through the host, DtoH then HtoD.
  EXPECT_DOUBLE_EQ(R.Duration, 2.0 * Staged.transferCycles(4096));
  // The direct peer lane must be strictly cheaper than staging for any
  // transfer large enough to matter.
  EXPECT_LT(TM.p2pCopyCycles(4096), R.Duration);
}

TEST_F(StreamEngineTest, P2PArrivalFencesTheNextKernelAcrossDevices) {
  asyncConfig(2);
  // The producer device's data-ready frontier gates the copy start: the
  // destination cannot read bytes the source has not produced.
  auto R = Eng.transferP2P(1 << 20, /*SrcReady=*/500.0);
  EXPECT_GE(R.Start, 500.0);
  double End = R.Start + R.Duration;
  // A kernel launched on the destination after the arrival waits for it,
  // exactly like an HtoD input (the cross-device fence).
  double KStart = Eng.kernelLaunch(100.0);
  EXPECT_DOUBLE_EQ(KStart, End);
}

//===----------------------------------------------------------------------===//
// End to end: output equivalence and trace lanes through Machine
//===----------------------------------------------------------------------===//

const char *PipelineSource = R"(
__kernel void scale(double *a, long n) {
  long i = __tid();
  if (i < n)
    a[i] = a[i] * 2.0 + 1.0;
}
int main() {
  long i; long r; double s;
  double *a = (double*)malloc(64 * sizeof(double));
  double *b = (double*)malloc(64 * sizeof(double));
  for (r = 0; r < 3; r++) {
    for (i = 0; i < 64; i++) { a[i] = (double)(i + r); b[i] = (double)i; }
    launch scale<<<1, 64>>>(a, 64);
    launch scale<<<1, 64>>>(b, 64);
    s = 0.0;
    for (i = 0; i < 64; i++) s = s + a[i] + b[i];
    print_f64(s);
  }
  free((char*)a); free((char*)b);
  return 0;
}
)";

struct E2ERun {
  std::string Output;
  double Total = 0, Wall = 0;
  uint64_t AsyncTransfers = 0;
  std::vector<TraceEvent> Events;
  std::string ChromeJson;
};

E2ERun runPipeline(unsigned Streams) {
  std::unique_ptr<Module> M = compileMiniC(PipelineSource, "e2e");
  PipelineOptions Opts;
  Opts.Parallelize = false;
  Opts.Manage = true;
  Opts.Optimize = true;
  runCGCMPipeline(*M, Opts);

  Machine Mach;
  Mach.setLaunchPolicy(LaunchPolicy::Managed);
  Mach.setAsyncTransfers(Streams);
  Mach.setTracingEnabled(true);
  Mach.loadModule(*M);
  EXPECT_EQ(Mach.run(), 0);

  E2ERun R;
  R.Output = Mach.getOutput();
  R.Total = Mach.getStats().totalCycles();
  R.Wall = Mach.getStats().wallCycles();
  R.AsyncTransfers = Mach.getStats().AsyncTransfers;
  R.Events = Mach.getTraceCollector().snapshot();
  std::ostringstream OS;
  Mach.getTraceCollector().exportChromeTrace(OS);
  R.ChromeJson = OS.str();
  return R;
}

TEST(StreamEngineE2ETest, AsyncIsOutputIdenticalAndWallClockBounded) {
  E2ERun Sync = runPipeline(0);
  EXPECT_FALSE(Sync.Output.empty());
  EXPECT_EQ(Sync.AsyncTransfers, 0u);
  EXPECT_DOUBLE_EQ(Sync.Wall, Sync.Total); // Sync wall == busy sum.

  for (unsigned Streams : {1u, 2u, 4u}) {
    E2ERun Async = runPipeline(Streams);
    // Eager data movement: bit-identical output at every stream count.
    EXPECT_EQ(Async.Output, Sync.Output) << "streams " << Streams;
    EXPECT_GT(Async.AsyncTransfers, 0u);
    // The wall clock never exceeds the serial busy sum, and with real
    // overlap (>= 2 streams) it strictly beats it.
    EXPECT_LE(Async.Wall, Async.Total + 1e-9) << "streams " << Streams;
    if (Streams >= 2)
      EXPECT_LT(Async.Wall, Async.Total) << "streams " << Streams;
  }
}

TEST(StreamEngineE2ETest, AsyncTraceUsesStreamLanesSyncStaysSingleLane) {
  E2ERun Sync = runPipeline(0);
  for (const TraceEvent &E : Sync.Events)
    EXPECT_EQ(E.Lane, LaneHost);
  // Single-lane traces keep the historical export: no lane metadata.
  EXPECT_EQ(Sync.ChromeJson.find("thread_name"), std::string::npos);

  E2ERun Async = runPipeline(4);
  bool SawCompute = false, SawStream = false;
  for (const TraceEvent &E : Async.Events) {
    SawCompute |= E.Lane == LaneCompute;
    SawStream |= E.Lane >= laneForStream(0);
  }
  EXPECT_TRUE(SawCompute);
  EXPECT_TRUE(SawStream);
  // The Chrome export names the lanes so Perfetto shows distinct tracks.
  EXPECT_NE(Async.ChromeJson.find("thread_name"), std::string::npos);
  EXPECT_NE(Async.ChromeJson.find("gpu-compute"), std::string::npos);
  EXPECT_NE(Async.ChromeJson.find("stream-0"), std::string::npos);
}

} // namespace
