//===- tests/TraceTests.cpp - Observability subsystem tests -------------------===//
//
// Part of the CGCM reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests for the observability subsystem (docs/Observability.md): the
/// structured trace collector (event ordering, Chrome-JSON export
/// well-formedness, zero-overhead when disabled), the per-allocation-site
/// transfer ledger (totals agree with ExecStats), and the optimization
/// remarks each transform pass emits.
///
//===----------------------------------------------------------------------===//

#include "exec/Machine.h"
#include "frontend/IRGen.h"
#include "support/Diagnostics.h"
#include "support/JSON.h"
#include "support/Trace.h"
#include "transform/Pipeline.h"
#include "workloads/Runner.h"

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <sstream>

using namespace cgcm;

namespace {

/// A two-kernel-launch program: a time loop spawning kernels over one
/// array, the shape the trace should show as epochs with communication
/// around them.
const char *TwoKernelProgram = R"(
  double data[128];
  int main() {
    int i; int t;
    for (i = 0; i < 128; i++)
      data[i] = i * 0.5;
    for (t = 0; t < 2; t++) {
      for (i = 0; i < 128; i++)
        data[i] = data[i] * 0.5 + 1.0;
    }
    double sum = 0.0;
    for (i = 0; i < 128; i++)
      sum += data[i];
    print_f64(sum);
    return 0;
  }
)";

/// Runs \p Source through the full pipeline on a managed machine, with
/// tracing on or off. The machine references the module, so both live in
/// the returned bundle (Machine itself is neither copyable nor movable).
struct TracedRun {
  std::unique_ptr<Module> M;
  std::unique_ptr<Machine> Mach;
};

TracedRun runTraced(const char *Source, bool Tracing) {
  TracedRun R;
  R.M = compileMiniC(Source, "trace-test");
  runCGCMPipeline(*R.M);
  R.Mach = std::make_unique<Machine>();
  R.Mach->setLaunchPolicy(LaunchPolicy::Managed);
  R.Mach->setTracingEnabled(Tracing);
  R.Mach->loadModule(*R.M);
  R.Mach->run();
  return R;
}

//===----------------------------------------------------------------------===//
// TraceCollector unit behaviour
//===----------------------------------------------------------------------===//

TEST(TraceCollector, DisabledCollectorRecordsNothing) {
  TraceCollector C;
  EXPECT_FALSE(C.isEnabled());
  C.instant("a", "cat", 1.0);
  C.complete("b", "cat", 2.0, 3.0);
  EXPECT_EQ(C.size(), 0u);
  EXPECT_EQ(C.getNumEmitted(), 0u);
}

TEST(TraceCollector, AssignsMonotonicSequenceNumbers) {
  TraceCollector C;
  C.setEnabled(true);
  C.instant("a", "cat", 10.0);
  C.complete("b", "cat", 20.0, 5.0, TraceArgs().add("k", uint64_t(7)));
  C.instant("c", "cat", 30.0);
  std::vector<TraceEvent> Events = C.snapshot();
  ASSERT_EQ(Events.size(), 3u);
  for (size_t I = 1; I != Events.size(); ++I)
    EXPECT_GT(Events[I].Seq, Events[I - 1].Seq);
  EXPECT_EQ(Events[1].Phase, TracePhase::Complete);
  EXPECT_EQ(Events[1].DurCycles, 5.0);
  EXPECT_EQ(Events[1].ArgsJson, "\"k\":7");
}

TEST(TraceCollector, RingDropsOldestAndCountsTheLoss) {
  TraceCollector C(/*Capacity=*/4);
  C.setEnabled(true);
  for (uint64_t I = 0; I != 10; ++I)
    C.instant("e" + std::to_string(I), "cat", static_cast<double>(I));
  EXPECT_EQ(C.size(), 4u);
  EXPECT_EQ(C.getNumEmitted(), 10u);
  EXPECT_EQ(C.getNumDropped(), 6u);
  std::vector<TraceEvent> Events = C.snapshot();
  ASSERT_EQ(Events.size(), 4u);
  // Oldest retained first: events 6..9.
  EXPECT_EQ(Events.front().Name, "e6");
  EXPECT_EQ(Events.back().Name, "e9");
}

//===----------------------------------------------------------------------===//
// End-to-end tracing through the machine
//===----------------------------------------------------------------------===//

TEST(MachineTrace, TwoKernelWorkloadEmitsOrderedEvents) {
  TracedRun R = runTraced(TwoKernelProgram, /*Tracing=*/true);
  std::vector<TraceEvent> Events = R.Mach->getTraceCollector().snapshot();
  ASSERT_FALSE(Events.empty());

  // Emission order is globally sequenced and modeled time never runs
  // backwards.
  unsigned Kernels = 0, Epochs = 0, Transfers = 0, RuntimeCalls = 0;
  for (size_t I = 0; I != Events.size(); ++I) {
    if (I) {
      EXPECT_GT(Events[I].Seq, Events[I - 1].Seq);
      EXPECT_GE(Events[I].TsCycles, Events[I - 1].TsCycles);
    }
    if (Events[I].Category == "kernel" && Events[I].Name != "inspect")
      ++Kernels;
    else if (Events[I].Name == "epoch")
      ++Epochs;
    else if (Events[I].Category == "xfer")
      ++Transfers;
    else if (Events[I].Category == "runtime")
      ++RuntimeCalls;
  }
  // The DOALL pass outlines all three array loops; at minimum the two
  // time-loop iterations launch, each bumping the epoch.
  EXPECT_GE(Kernels, 2u);
  EXPECT_GE(Epochs, 2u);
  EXPECT_GE(Transfers, 2u); // At least one copy in and one copy out.
  EXPECT_GE(RuntimeCalls, 2u);

  // A kernel span carries its launch policy.
  for (const TraceEvent &E : Events)
    if (E.Category == "kernel" && E.Name != "inspect")
      EXPECT_NE(E.ArgsJson.find("\"policy\""), std::string::npos);
}

TEST(MachineTrace, DisabledTracingAddsZeroEvents) {
  TracedRun R = runTraced(TwoKernelProgram, /*Tracing=*/false);
  EXPECT_EQ(R.Mach->getTraceCollector().getNumEmitted(), 0u);
  EXPECT_EQ(R.Mach->getTraceCollector().size(), 0u);
}

TEST(MachineTrace, ChromeExportParsesBackWellFormed) {
  TracedRun R = runTraced(TwoKernelProgram, /*Tracing=*/true);
  std::ostringstream OS;
  R.Mach->getTraceCollector().exportChromeTrace(OS);

  JsonValue Doc;
  std::string Err;
  ASSERT_TRUE(parseJson(OS.str(), Doc, &Err)) << Err;
  ASSERT_TRUE(Doc.isObject());
  EXPECT_EQ(Doc["displayTimeUnit"].String, "ns");
  EXPECT_EQ(Doc["otherData"]["clock"].String, "modeled-cycles");
  EXPECT_EQ(Doc["otherData"]["emitted"].Number,
            static_cast<double>(R.Mach->getTraceCollector().getNumEmitted()));

  const JsonValue &Events = Doc["traceEvents"];
  ASSERT_TRUE(Events.isArray());
  ASSERT_FALSE(Events.Array.empty());
  for (const JsonValue &E : Events.Array) {
    ASSERT_TRUE(E.isObject());
    EXPECT_TRUE(E["name"].isString());
    EXPECT_TRUE(E["cat"].isString());
    ASSERT_TRUE(E["ph"].isString());
    EXPECT_TRUE(E["ph"].String == "X" || E["ph"].String == "i");
    EXPECT_TRUE(E["ts"].isNumber());
    EXPECT_EQ(E["pid"].Number, 1.0);
    EXPECT_EQ(E["tid"].Number, 1.0);
    if (E["ph"].String == "X")
      EXPECT_TRUE(E["dur"].isNumber());
  }
}

TEST(MachineTrace, DevicePoolTraceNamesPerDeviceLanes) {
  // A DOALL nest heavy enough that the shard-profitability gate splits
  // it across the pool: per-device compute and peer-replication events
  // must land on lanes named by the dev<D>/ scheme the observability
  // validator checks (docs/MultiGPU.md).
  const char *Source = R"(
    double a[4096];
    double b[4096];
    int main() {
      int i; int j;
      double s;
      for (i = 0; i < 4096; i++)
        a[i] = i * 0.25;
      for (i = 0; i < 4096; i++) {
        s = 0.0;
        for (j = 0; j < 16; j++)
          s = s + a[i] * 0.5;
        b[i] = s;
      }
      s = 0.0;
      for (i = 0; i < 4096; i++)
        s += b[i];
      print_f64(s);
      return 0;
    }
  )";
  auto M = compileMiniC(Source, "trace-mdev");
  runCGCMPipeline(*M);
  Machine Mach;
  Mach.setLaunchPolicy(LaunchPolicy::Managed);
  Mach.setTracingEnabled(true);
  Mach.setDevices(2);
  Mach.setAsyncTransfers(2);
  Mach.loadModule(*M);
  Mach.run();

  std::ostringstream OS;
  Mach.getTraceCollector().exportChromeTrace(OS);
  const std::string J = OS.str();
  // Both devices computed (the nest sharded), and peer replication
  // landed on the destination device's copy streams.
  EXPECT_NE(J.find("dev0/gpu-compute"), std::string::npos);
  EXPECT_NE(J.find("dev1/gpu-compute"), std::string::npos);
  EXPECT_NE(J.find("dev1/stream-"), std::string::npos);
  // The shared host lane keeps its historical name.
  EXPECT_NE(J.find("\"host\""), std::string::npos);
}

TEST(MachineTrace, JsonlExportIsOneParsableObjectPerLine) {
  TracedRun R = runTraced(TwoKernelProgram, /*Tracing=*/true);
  std::ostringstream OS;
  R.Mach->getTraceCollector().exportJsonl(OS);
  std::istringstream IS(OS.str());
  std::string Line;
  size_t Lines = 0;
  while (std::getline(IS, Line)) {
    if (Line.empty())
      continue;
    JsonValue Doc;
    std::string Err;
    ASSERT_TRUE(parseJson(Line, Doc, &Err)) << Err << ": " << Line;
    EXPECT_TRUE(Doc.isObject());
    ++Lines;
  }
  EXPECT_EQ(Lines, R.Mach->getTraceCollector().size());
}

//===----------------------------------------------------------------------===//
// Transfer ledger
//===----------------------------------------------------------------------===//

TEST(TransferLedger, TotalsAgreeWithExecStats) {
  TracedRun R = runTraced(TwoKernelProgram, /*Tracing=*/false);
  const TransferLedger &Ledger = R.Mach->getRuntime().getLedger();
  const ExecStats &Stats = R.Mach->getStats();
  EXPECT_GT(Stats.BytesHtoD, 0u);
  EXPECT_EQ(Ledger.totalBytesHtoD(), Stats.BytesHtoD);
  EXPECT_EQ(Ledger.totalBytesDtoH(), Stats.BytesDtoH);
}

TEST(TransferLedger, AttributesGlobalsToNamedSites) {
  TracedRun R = runTraced(TwoKernelProgram, /*Tracing=*/false);
  const TransferLedger &Ledger = R.Mach->getRuntime().getLedger();
  auto It = Ledger.entries().find("global data");
  ASSERT_NE(It, Ledger.entries().end());
  EXPECT_GT(It->second.BytesHtoD, 0u);
  EXPECT_EQ(It->second.Units, 1u);
}

TEST(TransferLedger, ProfileJsonLedgerMatchesStats) {
  TracedRun R = runTraced(TwoKernelProgram, /*Tracing=*/false);
  std::ostringstream OS;
  writeProfileJson(OS, R.Mach->getStats(), R.Mach->getRuntime().getLedger());

  JsonValue Doc;
  std::string Err;
  ASSERT_TRUE(parseJson(OS.str(), Doc, &Err)) << Err;
  EXPECT_EQ(Doc["schema"].String, "cgcm-profile-v1");
  const JsonValue &Ledger = Doc["ledger"];
  ASSERT_TRUE(Ledger.isArray());
  double LedgerHtoD = 0, LedgerDtoH = 0;
  for (const JsonValue &E : Ledger.Array) {
    LedgerHtoD += E["bytes_htod"].Number;
    LedgerDtoH += E["bytes_dtoh"].Number;
  }
  EXPECT_EQ(LedgerHtoD, Doc["stats"]["bytes_htod"].Number);
  EXPECT_EQ(LedgerDtoH, Doc["stats"]["bytes_dtoh"].Number);
  EXPECT_EQ(LedgerHtoD, static_cast<double>(R.Mach->getStats().BytesHtoD));
}

//===----------------------------------------------------------------------===//
// Optimization remarks
//===----------------------------------------------------------------------===//

/// Runs the pipeline over \p Source collecting remarks.
DiagnosticEngine pipelineRemarks(const std::string &Source,
                                 bool Parallelize = true) {
  auto M = compileMiniC(Source, "remark-test");
  DiagnosticEngine DE;
  PipelineOptions Opts;
  Opts.Parallelize = Parallelize;
  Opts.Remarks = &DE;
  runCGCMPipeline(*M, Opts);
  return DE;
}

TEST(Remarks, MapPromotionHoistCarriesSourceLocation) {
  DiagnosticEngine DE = pipelineRemarks(TwoKernelProgram);
  EXPECT_TRUE(DE.hasDiagnostic("cgcm-map-promotion-hoist"));
  EXPECT_GT(DE.getNumRemarks(), 0u);
  EXPECT_EQ(DE.getNumErrors(), 0u);
  EXPECT_EQ(DE.getNumWarnings(), 0u);
  bool FoundLocated = false;
  for (const Diagnostic &D : DE.getDiagnostics())
    if (D.ID == "cgcm-map-promotion-hoist") {
      EXPECT_EQ(D.Severity, DiagSeverity::Remark);
      if (D.Loc.isValid())
        FoundLocated = true;
    }
  EXPECT_TRUE(FoundLocated);
}

TEST(Remarks, DoallOutlineAndRejectReasons) {
  // The array loops parallelize; the `sum` reduction has a live-out and
  // must be rejected with a reason.
  DiagnosticEngine DE = pipelineRemarks(TwoKernelProgram);
  EXPECT_TRUE(DE.hasDiagnostic("cgcm-doall-outline"));
  EXPECT_TRUE(DE.hasDiagnostic("cgcm-doall-reject"));
}

TEST(Remarks, GlueKernelLoweringIsReported) {
  // lu's pivot row normalization is the glue-kernel showcase: small CPU
  // regions between launches that block map promotion until outlined.
  const Workload *LU = findWorkload("lu");
  ASSERT_NE(LU, nullptr);
  DiagnosticEngine DE = pipelineRemarks(LU->Source);
  EXPECT_TRUE(DE.hasDiagnostic("cgcm-glue-outline"));
}

TEST(Remarks, AllocaPromotionIsReported) {
  // A helper whose escaping local buffer blocks promotion until it is
  // preallocated in the caller's frame.
  const char *Source = R"(
    double data[256];
    void step() {
      double tmp[256];
      int i;
      for (i = 0; i < 256; i++)
        tmp[i] = data[i] * 0.5 + 1.0;
      for (i = 0; i < 256; i++)
        data[i] = tmp[i] * 0.99;
    }
    int main() {
      int i; int t;
      for (i = 0; i < 256; i++)
        data[i] = i * 0.01;
      for (t = 0; t < 4; t++)
        step();
      double sum = 0.0;
      for (i = 0; i < 256; i++)
        sum += data[i];
      print_f64(sum);
      return 0;
    }
  )";
  DiagnosticEngine DE = pipelineRemarks(Source);
  EXPECT_TRUE(DE.hasDiagnostic("cgcm-alloca-hoist"));
}

TEST(Remarks, RejectionsAreDeduplicatedAcrossFixpointRounds) {
  DiagnosticEngine DE = pipelineRemarks(TwoKernelProgram);
  // The promotion passes iterate to convergence; the same (function,
  // site, reason) must not repeat once per round.
  std::map<std::string, unsigned> Counts;
  for (const Diagnostic &D : DE.getDiagnostics())
    if (D.ID == "cgcm-map-promotion-reject" || D.ID == "cgcm-doall-reject")
      ++Counts[D.FunctionName + "|" + D.Loc.getString() + "|" + D.Message];
  for (const auto &[Key, N] : Counts)
    EXPECT_EQ(N, 1u) << Key;
}

} // namespace
