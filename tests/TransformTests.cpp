//===- tests/TransformTests.cpp - Transformation pass unit tests ---------------===//
//
// Part of the CGCM reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Unit tests for each transformation: Mem2Reg SSA construction, the
/// DOALL parallelizer's acceptance/rejection logic, communication
/// management insertion, map promotion's hoisting and safety conditions,
/// alloca promotion, and glue kernels.
///
//===----------------------------------------------------------------------===//

#include "exec/Machine.h"
#include "frontend/IRGen.h"
#include "transform/AllocaPromotion.h"
#include "transform/CommManagement.h"
#include "transform/DOALL.h"
#include "transform/GlueKernels.h"
#include "transform/MapPromotion.h"
#include "transform/Mem2Reg.h"
#include "transform/Utils.h"

#include <gtest/gtest.h>

using namespace cgcm;

namespace {

unsigned countInstKind(Function &F, Value::ValueKind K) {
  unsigned N = 0;
  for (Instruction *I : F.instructions())
    if (I->getKind() == K)
      ++N;
  return N;
}

unsigned countCallsTo(Module &M, const std::string &Name) {
  unsigned N = 0;
  for (const auto &F : M.functions())
    for (Instruction *I : F->instructions())
      if (auto *CI = dyn_cast<CallInst>(I))
        if (CI->getCallee()->getName() == Name)
          ++N;
  return N;
}

//===----------------------------------------------------------------------===//
// Mem2Reg
//===----------------------------------------------------------------------===//

TEST(Mem2Reg, PromotesScalarsInsertsPhis) {
  auto M = compileMiniC(R"(
    int main() {
      int s = 0;
      int i;
      for (i = 0; i < 10; i++)
        s += i;
      return s;
    }
  )",
                        "m2r");
  Function *F = M->getFunction("main");
  unsigned Before = countInstKind(*F, Value::ValueKind::Alloca);
  EXPECT_GE(Before, 2u); // s and i (at least).
  unsigned Promoted = promoteAllocasToRegisters(*F);
  EXPECT_EQ(Promoted, Before);
  EXPECT_EQ(countInstKind(*F, Value::ValueKind::Alloca), 0u);
  EXPECT_EQ(countInstKind(*F, Value::ValueKind::Load), 0u);
  EXPECT_EQ(countInstKind(*F, Value::ValueKind::Store), 0u);
  EXPECT_GE(countInstKind(*F, Value::ValueKind::Phi), 2u);
}

TEST(Mem2Reg, KeepsEscapingAllocas) {
  auto M = compileMiniC(R"(
    void fill(double *p) { p[0] = 1.0; }
    int main() {
      double buf[4];
      fill(buf);
      int plain = 3;
      return plain + (int)buf[0];
    }
  )",
                        "m2r2");
  Function *F = M->getFunction("main");
  promoteAllocasToRegisters(*F);
  // buf escapes into the call (and is an array); plain promotes.
  EXPECT_EQ(countInstKind(*F, Value::ValueKind::Alloca), 1u);
}

TEST(Mem2Reg, PreservesSemantics) {
  const char *Src = R"(
    int collatz(int n) {
      int steps = 0;
      while (n != 1) {
        if (n % 2 == 0)
          n = n / 2;
        else
          n = 3 * n + 1;
        steps++;
      }
      return steps;
    }
    int main() { return collatz(27); }
  )";
  auto Plain = compileMiniC(Src, "a");
  Machine M1;
  M1.loadModule(*Plain);
  int64_t Ref = M1.run();

  auto Ssa = compileMiniC(Src, "b");
  promoteAllocasToRegisters(*Ssa);
  Machine M2;
  M2.loadModule(*Ssa);
  EXPECT_EQ(M2.run(), Ref);
  EXPECT_EQ(Ref, 111); // Collatz(27) takes 111 steps.
  // And the SSA version executes fewer instructions (no load/store traffic).
  EXPECT_LT(M2.getStats().CpuOps, M1.getStats().CpuOps);
}

//===----------------------------------------------------------------------===//
// DOALL acceptance and rejection
//===----------------------------------------------------------------------===//

unsigned doallKernels(const std::string &Body) {
  auto M = compileMiniC(Body, "doall");
  promoteAllocasToRegisters(*M);
  return parallelizeDOALLLoops(*M).KernelsCreated;
}

TEST(DOALL, AcceptsIndependentLoops) {
  EXPECT_EQ(doallKernels(R"(
    double a[64]; double b[64];
    int main() {
      int i;
      for (i = 0; i < 64; i++) a[i] = b[i] * 2.0;
      return 0;
    })"),
            1u);
  // Read-modify-write of the same element is fine.
  EXPECT_EQ(doallKernels(R"(
    double a[64];
    int main() {
      int i;
      for (i = 0; i < 64; i++) a[i] = a[i] + 1.0;
      return 0;
    })"),
            1u);
  // Intra-row shift against a row-indexed write is fine (adi pattern).
  EXPECT_EQ(doallKernels(R"(
    double x[16][16];
    int main() {
      int i; int j;
      for (i = 0; i < 16; i++)
        for (j = 1; j < 16; j++)
          x[i][j] = x[i][j] - x[i][j - 1];
      return 0;
    })"),
            1u);
}

TEST(DOALL, RejectsReductions) {
  EXPECT_EQ(doallKernels(R"(
    double a[64]; double out[2];
    int main() {
      int i; double s = 0.0;
      for (i = 0; i < 64; i++) s += a[i];
      out[0] = s;
      return 0;
    })"),
            0u);
}

TEST(DOALL, RejectsCrossIterationStencil) {
  // seidel shape: reads row i-1 while writing row i.
  EXPECT_EQ(doallKernels(R"(
    double a[16][16];
    int main() {
      int i; int j;
      for (i = 1; i < 16; i++)
        for (j = 0; j < 16; j++)
          a[i][j] = a[i - 1][j] * 0.5;
      return 0;
    })"),
            0u);
  // 1D neighbor dependence.
  EXPECT_EQ(doallKernels(R"(
    double a[64];
    int main() {
      int i;
      for (i = 1; i < 64; i++) a[i] = a[i - 1] + 1.0;
      return 0;
    })"),
            0u);
}

TEST(DOALL, RejectsLoopInvariantWrites) {
  EXPECT_EQ(doallKernels(R"(
    double a[64];
    int main() {
      int i;
      for (i = 0; i < 64; i++) a[0] = i;
      return 0;
    })"),
            0u);
}

TEST(DOALL, RejectsDataDependentSubscriptWrites) {
  EXPECT_EQ(doallKernels(R"(
    double a[64]; int idx[64];
    int main() {
      int i;
      for (i = 0; i < 64; i++) a[idx[i]] = i;
      return 0;
    })"),
            0u);
}

TEST(DOALL, RejectsCallsAndAllocas) {
  EXPECT_EQ(doallKernels(R"(
    double a[64];
    int main() {
      int i;
      for (i = 0; i < 64; i++) {
        a[i] = i;
        print_i64(i);
      }
      return 0;
    })"),
            0u);
}

TEST(DOALL, RejectsLiveOuts) {
  EXPECT_EQ(doallKernels(R"(
    double a[64];
    int main() {
      int i; int last = 0;
      for (i = 0; i < 64; i++) {
        a[i] = i;
        last = i;
      }
      return last;
    })"),
            0u);
}

TEST(DOALL, AcceptsMathCallsInBody) {
  EXPECT_EQ(doallKernels(R"(
    double a[64];
    int main() {
      int i;
      for (i = 0; i < 64; i++) a[i] = sqrt(i * 1.0) + exp(0.1);
      return 0;
    })"),
            1u);
}

TEST(DOALL, GridStrideKernelCoversAllIterations) {
  // More iterations than launched threads: the grid-stride loop must
  // still touch every element.
  const char *Src = R"(
    double a[1000];
    int main() {
      int i;
      for (i = 0; i < 1000; i++)
        a[i] = i * 1.0;
      double s = 0.0;
      for (i = 0; i < 1000; i++) s += a[i];
      print_f64(s);
      return 0;
    }
  )";
  auto Seq = compileMiniC(Src, "seq");
  Machine M1;
  M1.loadModule(*Seq);
  M1.run();

  auto Par = compileMiniC(Src, "par");
  promoteAllocasToRegisters(*Par);
  EXPECT_EQ(parallelizeDOALLLoops(*Par).KernelsCreated, 1u);
  insertCommunicationManagement(*Par);
  Machine M2;
  M2.setLaunchPolicy(LaunchPolicy::Managed);
  M2.loadModule(*Par);
  M2.run();
  EXPECT_EQ(M2.getOutput(), M1.getOutput());
}

//===----------------------------------------------------------------------===//
// Communication management
//===----------------------------------------------------------------------===//

TEST(Management, InsertsBalancedCallsAndDeclares) {
  auto M = compileMiniC(R"(
    double g[32];
    const double lut[4] = {1.0, 2.0, 3.0, 4.0};
    __kernel void k(double *p, long n) {
      long i = __tid();
      if (i < n) p[i] = g[i % 32] + lut[0];
    }
    int main() {
      double *h = (double*)malloc(64 * sizeof(double));
      launch k<<<1, 64>>>(h, 64);
      free((char*)h);
      return 0;
    }
  )",
                        "mgmt");
  promoteAllocasToRegisters(*M);
  ManagementStats S = insertCommunicationManagement(*M);
  EXPECT_EQ(S.LaunchesManaged, 1u);
  // h (arg) + g + lut mapped.
  EXPECT_EQ(S.MapsInserted, 3u);
  EXPECT_EQ(S.MapArraysInserted, 0u);
  // Every original global declared (g, lut, plus interned strings if any).
  EXPECT_GE(S.GlobalsDeclared, 2u);
  EXPECT_EQ(countCallsTo(*M, "cgcm_map"), 3u);
  EXPECT_EQ(countCallsTo(*M, "cgcm_unmap"), 3u);
  EXPECT_EQ(countCallsTo(*M, "cgcm_release"), 3u);
  EXPECT_GE(countCallsTo(*M, "cgcm_declare_global"), 2u);
}

TEST(Management, UsesMapArrayForDoublePointers) {
  auto M = compileMiniC(R"(
    double r0[8];
    double r1[8];
    double *rows[2];
    __kernel void k(double **r) {
      long i = __tid();
      if (i < 8) r[0][i] = r[1][i] + 1.0;
    }
    int main() {
      rows[0] = r0;
      rows[1] = r1;
      launch k<<<1, 8>>>(rows);
      return 0;
    }
  )",
                        "mgmt2");
  promoteAllocasToRegisters(*M);
  ManagementStats S = insertCommunicationManagement(*M);
  EXPECT_EQ(S.MapArraysInserted, 1u);
  EXPECT_EQ(countCallsTo(*M, "cgcm_map_array"), 1u);
  EXPECT_EQ(countCallsTo(*M, "cgcm_unmap_array"), 1u);
  EXPECT_EQ(countCallsTo(*M, "cgcm_release_array"), 1u);
}

TEST(Management, TripleIndirectionIsRejected) {
  auto M = compileMiniC(R"(
    double x[4];
    double *p1[1];
    double **p2[1];
    __kernel void k(double ***ppp) { ppp[0][0][0] = 1.0; }
    int main() {
      p1[0] = x;
      p2[0] = p1;
      launch k<<<1, 1>>>(p2);
      return 0;
    }
  )",
                        "mgmt3");
  promoteAllocasToRegisters(*M);
  EXPECT_DEATH(insertCommunicationManagement(*M),
               "three or more levels of indirection");
}

TEST(Management, DeclareAllocaInsertedForEscapingStack) {
  auto M = compileMiniC(R"(
    void fill(double *p, int n) {
      int i;
      for (i = 0; i < n; i++) p[i] = i;
    }
    int main() {
      double buf[16];
      fill(buf, 16);
      return (int)buf[3];
    }
  )",
                        "mgmt4");
  promoteAllocasToRegisters(*M);
  insertCommunicationManagement(*M);
  EXPECT_EQ(countCallsTo(*M, "cgcm_declare_alloca"), 1u);
}

//===----------------------------------------------------------------------===//
// Map promotion
//===----------------------------------------------------------------------===//

struct PromotionHarness {
  std::unique_ptr<Module> M;
  PromotionStats Stats;

  explicit PromotionHarness(const char *Src) {
    M = compileMiniC(Src, "promo");
    promoteAllocasToRegisters(*M);
    parallelizeDOALLLoops(*M);
    insertCommunicationManagement(*M);
    Stats = promoteMaps(*M);
  }

  ExecStats run() {
    Machine Mach;
    Mach.setLaunchPolicy(LaunchPolicy::Managed);
    Mach.loadModule(*M);
    Mach.run();
    return Mach.getStats();
  }
};

TEST(MapPromotionTest, HoistsOutOfTimeLoop) {
  PromotionHarness H(R"(
    double a[128];
    int main() {
      int t; int i;
      for (i = 0; i < 128; i++) a[i] = i;
      for (t = 0; t < 50; t++) {
        for (i = 0; i < 128; i++) a[i] = a[i] * 0.99;
      }
      double s = 0.0;
      for (i = 0; i < 128; i++) s += a[i];
      print_f64(s);
      return 0;
    }
  )");
  EXPECT_GT(H.Stats.LoopHoists, 0u);
  EXPECT_GT(H.Stats.UnmapsDeleted, 0u);
  ExecStats S = H.run();
  // 51 launches but only ~2 HtoD copies (the checksum forces one DtoH).
  EXPECT_EQ(S.KernelLaunches, 51u);
  EXPECT_LE(S.TransfersHtoD, 3u);
  EXPECT_LE(S.TransfersDtoH, 3u);
}

TEST(MapPromotionTest, CpuReadBlocksHoisting) {
  // The CPU reads the array every iteration: promotion must NOT hoist,
  // or the CPU would read stale data. Correctness is the test.
  PromotionHarness H(R"(
    double a[64];
    double trace[100];
    int main() {
      int t; int i;
      for (i = 0; i < 64; i++) a[i] = i;
      for (t = 0; t < 30; t++) {
        for (i = 0; i < 64; i++) a[i] = a[i] + 1.0;
        trace[t] = a[t % 64];
      }
      double s = 0.0;
      for (t = 0; t < 30; t++) s += trace[t];
      print_f64(s);
      return 0;
    }
  )");
  ExecStats S = H.run();
  // Every iteration must copy back for the CPU read.
  EXPECT_GE(S.TransfersDtoH, 30u);
}

TEST(MapPromotionTest, CorrectnessWithCpuPhases) {
  // Alternating CPU and GPU writes; outputs must match sequential.
  const char *Src = R"(
    double a[64];
    int main() {
      int t; int i;
      for (i = 0; i < 64; i++) a[i] = i * 0.5;
      for (t = 0; t < 10; t++) {
        for (i = 0; i < 64; i++) a[i] = a[i] * 1.01;
        if (t % 3 == 0) {
          double bump = a[0] * 0.001;
          int j;
          for (j = 0; j < 64; j++) {
            a[j] = a[j] + bump;
            bump = bump * 1.0001;
          }
        }
      }
      double s = 0.0;
      for (i = 0; i < 64; i++) s += a[i];
      print_f64(s);
      return 0;
    }
  )";
  auto Seq = compileMiniC(Src, "seq");
  Machine M1;
  M1.loadModule(*Seq);
  M1.run();
  PromotionHarness H(Src);
  Machine M2;
  M2.setLaunchPolicy(LaunchPolicy::Managed);
  M2.loadModule(*H.M);
  M2.run();
  EXPECT_EQ(M2.getOutput(), M1.getOutput());
}

//===----------------------------------------------------------------------===//
// Alloca promotion and glue kernels
//===----------------------------------------------------------------------===//

TEST(AllocaPromotionTest, HoistsEscapingLocalIntoCaller) {
  auto M = compileMiniC(R"(
    double g[32];
    void step() {
      double tmp[32];
      int i;
      for (i = 0; i < 32; i++) tmp[i] = g[i] * 2.0;
      for (i = 0; i < 32; i++) g[i] = tmp[i];
    }
    int main() {
      int t;
      for (t = 0; t < 5; t++) step();
      return 0;
    }
  )",
                        "ap");
  promoteAllocasToRegisters(*M);
  parallelizeDOALLLoops(*M);
  insertCommunicationManagement(*M);
  AllocaPromotionStats S = promoteAllocasUpCallGraph(*M);
  EXPECT_EQ(S.AllocasHoisted, 1u);
  Function *Step = M->getFunction("step");
  // The local became a parameter; main now owns the buffer.
  EXPECT_EQ(Step->getNumArgs(), 1u);
  Function *Main = M->getFunction("main");
  unsigned MainAllocas = countInstKind(*Main, Value::ValueKind::Alloca);
  EXPECT_EQ(MainAllocas, 1u);
}

TEST(GlueKernelsTest, OutlinesBlockingPivotCode) {
  auto M = compileMiniC(R"(
    double a[64];
    double pivbuf[2];
    int main() {
      int t; int i;
      for (i = 0; i < 64; i++) a[i] = i + 1.0;
      for (t = 0; t < 20; t++) {
        pivbuf[0] = 1.0 / a[t % 8 + 1];
        for (i = 0; i < 64; i++) a[i] = a[i] * pivbuf[0] + 1.0;
      }
      double s = 0.0;
      for (i = 0; i < 64; i++) s += a[i];
      print_f64(s);
      return 0;
    }
  )",
                        "glue");
  promoteAllocasToRegisters(*M);
  parallelizeDOALLLoops(*M);
  insertCommunicationManagement(*M);
  GlueStats S = createGlueKernels(*M);
  EXPECT_EQ(S.GlueKernelsCreated, 1u);
  unsigned GlueFns = 0;
  for (const auto &F : M->functions())
    if (F->isGlueKernel())
      ++GlueFns;
  EXPECT_EQ(GlueFns, 1u);
  // With the glue kernel in place, map promotion can hoist everything.
  PromotionStats P = promoteMaps(*M);
  EXPECT_GT(P.LoopHoists, 0u);
  Machine Mach;
  Mach.setLaunchPolicy(LaunchPolicy::Managed);
  Mach.loadModule(*M);
  Mach.run();
  // Whole t-loop runs without DtoH traffic (except the final unmap).
  EXPECT_LE(Mach.getStats().TransfersDtoH, 3u);
}

TEST(GlueKernelsTest, LeavesNonBlockingCodeAlone) {
  auto M = compileMiniC(R"(
    double a[64];
    int main() {
      int t; int i;
      double phase = 0.0;
      for (i = 0; i < 64; i++) a[i] = i;
      for (t = 0; t < 10; t++) {
        phase = phase + 0.25;
        for (i = 0; i < 64; i++) a[i] = a[i] + 1.0;
      }
      print_f64(phase + a[0]);
      return 0;
    }
  )",
                        "glue2");
  promoteAllocasToRegisters(*M);
  parallelizeDOALLLoops(*M);
  insertCommunicationManagement(*M);
  // The scalar phase arithmetic never touches mapped memory.
  GlueStats S = createGlueKernels(*M);
  EXPECT_EQ(S.GlueKernelsCreated, 0u);
}

TEST(Utils, RuntimeCallPointerLooksThroughCasts) {
  auto M = compileMiniC(R"(
    double a[16];
    __kernel void k(double *p) { p[0] = 1.0; }
    int main() {
      launch k<<<1, 1>>>(a);
      return 0;
    }
  )",
                        "utils");
  promoteAllocasToRegisters(*M);
  insertCommunicationManagement(*M);
  unsigned Found = 0;
  for (const auto &F : M->functions())
    for (Instruction *I : F->instructions())
      if (Value *P = getRuntimeCallPointer(I)) {
        ++Found;
        // The underlying pointer is the decayed global, not the i8* cast.
        EXPECT_TRUE(P->getType()->isPointerTy());
        EXPECT_FALSE(isRuntimeFunction(M->getFunction("k")));
      }
  EXPECT_EQ(Found, 3u); // map + unmap + release on one pointer.
}

} // namespace
