//===- tests/WorkloadTests.cpp - The 24-program suite ------------------------===//
//
// Part of the CGCM reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Parameterized over all 24 workloads: asserts the DOALL parallelizer
/// extracts exactly the paper's kernel counts (101 in total), that the
/// named-region/inspector-executor applicability per program matches
/// Table 3, and that every execution configuration reproduces the
/// sequential output bit-for-bit.
///
//===----------------------------------------------------------------------===//

#include "workloads/Runner.h"

#include <gtest/gtest.h>

using namespace cgcm;

namespace {

class WorkloadSuite : public ::testing::TestWithParam<Workload> {};

std::vector<Workload> allWorkloads() { return getWorkloads(); }

} // namespace

TEST_P(WorkloadSuite, KernelCountMatchesPaper) {
  const Workload &W = GetParam();
  WorkloadRun R = runWorkload(W, BenchConfig::CGCMUnoptimized);
  EXPECT_EQ(R.StaticKernels, W.PaperKernels)
      << W.Name << ": expected " << W.PaperKernels << " kernels";
}

TEST_P(WorkloadSuite, ApplicabilityMatchesPaper) {
  const Workload &W = GetParam();
  std::vector<LaunchApplicability> Apps = analyzeWorkloadApplicability(W);
  unsigned CGCMCount = 0, NRCount = 0, IECount = 0;
  for (const LaunchApplicability &A : Apps) {
    if (A.CGCM)
      ++CGCMCount;
    if (A.NamedRegions)
      ++NRCount;
    if (A.InspectorExecutor)
      ++IECount;
  }
  // CGCM handles every kernel the parallelizer creates (Table 3).
  EXPECT_EQ(CGCMCount, Apps.size()) << W.Name;
  EXPECT_EQ(NRCount, W.PaperNamedRegionKernels) << W.Name;
  // The paper observes NR and IE fail on the same kernels.
  EXPECT_EQ(IECount, NRCount) << W.Name;
}

TEST_P(WorkloadSuite, AllConfigsMatchSequentialOutput) {
  const Workload &W = GetParam();
  WorkloadRun Seq = runWorkload(W, BenchConfig::Sequential);
  ASSERT_FALSE(Seq.Output.empty()) << W.Name << " printed no checksum";
  for (BenchConfig C :
       {BenchConfig::InspectorExecutor, BenchConfig::CGCMUnoptimized,
        BenchConfig::CGCMOptimized}) {
    WorkloadRun R = runWorkload(W, C);
    EXPECT_EQ(R.Output, Seq.Output)
        << W.Name << " under " << getConfigName(C);
  }
}

TEST_P(WorkloadSuite, OptimizationNeverHurts) {
  // Paper section 6.3: "communication optimizations never reduce
  // performance".
  const Workload &W = GetParam();
  WorkloadRun Unopt = runWorkload(W, BenchConfig::CGCMUnoptimized);
  WorkloadRun Opt = runWorkload(W, BenchConfig::CGCMOptimized);
  EXPECT_LE(Opt.TotalCycles, Unopt.TotalCycles * 1.02) << W.Name;
}

TEST_P(WorkloadSuite, DevicePoolIsOutputIdenticalAndNeverSlower) {
  // Sharding is a timing-plane decision over the eager single-copy data
  // plane (docs/MultiGPU.md), so output is bit-identical at every pool
  // size and placement, and the shard-profitability gate never commits
  // a schedule whose modeled cost exceeds the single-device launch.
  const Workload &W = GetParam();
  WorkloadRun Base = runWorkload(W, BenchConfig::CGCMOptimized);
  RunnerOptions One;
  One.Devices = 1;
  WorkloadRun D1 = runWorkload(W, BenchConfig::CGCMOptimized, One);
  EXPECT_EQ(D1.Output, Base.Output) << W.Name;
  // --devices=1 is the pre-pool engine, bit-for-bit in modeled cost.
  EXPECT_DOUBLE_EQ(D1.TotalCycles, Base.TotalCycles) << W.Name;
  for (unsigned N : {2u, 4u}) {
    RunnerOptions RO;
    RO.Devices = N;
    WorkloadRun R = runWorkload(W, BenchConfig::CGCMOptimized, RO);
    EXPECT_EQ(R.Output, Base.Output) << W.Name << " devices=" << N;
    EXPECT_LE(R.TotalCycles, Base.TotalCycles) << W.Name << " devices=" << N;
    RunnerOptions BB;
    BB.Devices = N;
    BB.Placement = PlacementPolicy::BytesBalanced;
    WorkloadRun B = runWorkload(W, BenchConfig::CGCMOptimized, BB);
    EXPECT_EQ(B.Output, Base.Output)
        << W.Name << " devices=" << N << " placement=bytes";
  }
}

INSTANTIATE_TEST_SUITE_P(AllPrograms, WorkloadSuite,
                         ::testing::ValuesIn(allWorkloads()),
                         [](const ::testing::TestParamInfo<Workload> &Info) {
                           std::string N = Info.param.Name;
                           for (char &C : N)
                             if (C == '-')
                               C = '_';
                           return N;
                         });

TEST(WorkloadSuiteTotals, HundredAndOneKernels) {
  // Paper section 6: "CGCM is applicable to all 101 DOALL loops found by
  // a simple automatic DOALL parallelizer across a selection of 24
  // programs".
  unsigned Total = 0, NR = 0;
  for (const Workload &W : getWorkloads()) {
    Total += W.PaperKernels;
    NR += W.PaperNamedRegionKernels;
  }
  EXPECT_EQ(getWorkloads().size(), 24u);
  EXPECT_EQ(Total, 101u);
  // Table 3's per-program values sum to 78 named-region kernels (the
  // prose says "80"; see EXPERIMENTS.md).
  EXPECT_EQ(NR, 78u);
}

TEST_P(WorkloadSuite, DemandPagingExtensionMatchesSequential) {
  // The DyManD-style extension must run the whole suite correctly with
  // zero compiler-inserted communication (docs/Extensions.md).
  const Workload &W = GetParam();
  WorkloadRun Seq = runWorkload(W, BenchConfig::Sequential);
  WorkloadRun Demand = runWorkload(W, BenchConfig::DemandPaged);
  EXPECT_EQ(Demand.Output, Seq.Output) << W.Name;
}
