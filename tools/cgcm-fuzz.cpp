//===- tools/cgcm-fuzz.cpp - Differential fuzzing driver ---------------------===//
//
// Part of the CGCM reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Drives the differential fuzzing subsystem (docs/Fuzzing.md):
///
///   cgcm-fuzz --count=200                   # 200 program seeds from 0
///   cgcm-fuzz --seed=17                     # one specific seed
///   cgcm-fuzz --mode=api --count=100        # raw API-sequence sessions
///   cgcm-fuzz --mode=both --count=100       # programs + API sequences
///   cgcm-fuzz --mode=static-parity --count=100
///                                           # false-positive sweep: seeds
///                                           # the differ accepts must be
///                                           # clean of static lifecycle
///                                           # errors (docs/StaticAnalysis.md)
///   cgcm-fuzz --seed=17 --reduce            # minimize a failing program
///   cgcm-fuzz --seed=17 --print             # dump the generated program
///   cgcm-fuzz --count=500 --out=artifacts   # write failing seeds + repro
///   cgcm-fuzz --steps=800                   # longer API sessions
///   cgcm-fuzz --no-fork                     # in-process (debugger-friendly)
///   cgcm-fuzz --streams=8                   # async differ pair at 8 streams
///   cgcm-fuzz --no-async                    # skip the optimized-async run
///   cgcm-fuzz --no-xlat-cache               # skip the optimized-xlatcache run
///
/// Each candidate normally runs in a forked child: the runtime reports
/// contract violations via reportFatalError (which aborts), and fork
/// isolation converts those aborts into recorded failures instead of
/// killing the sweep. Exit status is nonzero iff any seed failed.
///
//===----------------------------------------------------------------------===//

#include "analysis/commcost/CommCost.h"
#include "frontend/IRGen.h"
#include "fuzz/ApiFuzz.h"
#include "fuzz/Differ.h"
#include "fuzz/ProgGen.h"
#include "fuzz/Reducer.h"
#include "transform/Pipeline.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <functional>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include <sys/stat.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

using namespace cgcm;

namespace {

struct ToolOptions {
  uint64_t Seed = 0;
  bool HaveSeed = false;
  uint64_t Count = 1;
  std::string Mode = "prog"; // prog | api | both
  unsigned Steps = 400;
  bool Reduce = false;
  bool Print = false;
  bool Fork = true;
  std::string OutDir;
  /// Stream count for the differ's optimized-async configuration
  /// (docs/TransferEngine.md); 0 skips that run.
  unsigned AsyncStreams = 4;
  /// Device-pool size for the differ's optimized-multidev configuration
  /// (docs/MultiGPU.md); <= 1 skips that run.
  unsigned Devices = 2;
  /// Whether the differ runs the optimized-xlatcache configuration
  /// (per-call-site translation cache force-enabled); false skips it.
  bool XlatCache = true;
};

/// Outcome of running one candidate (possibly in a child process).
struct Verdict {
  bool Failed = false;
  bool Crashed = false; ///< Fatal runtime error / signal, not a diff.
  std::string Detail;   ///< Child stderr+stdout or in-process failure.
};

[[noreturn]] void usageError(const std::string &Msg) {
  std::cerr << "cgcm-fuzz: " << Msg << "\n"
            << "usage: cgcm-fuzz [--seed=N | --count=N]\n"
            << "                 [--mode=prog|api|both|static-parity|multi-session]\n"
            << "                 [--steps=N] [--reduce] [--print] [--out=DIR]\n"
            << "                 [--no-fork] [--streams=N] [--no-async]\n"
            << "                 [--devices=N] [--no-multidev]\n"
            << "                 [--no-xlat-cache]\n";
  std::exit(2);
}

ToolOptions parseArgs(int Argc, char **Argv) {
  ToolOptions O;
  for (int I = 1; I < Argc; ++I) {
    std::string A = Argv[I];
    auto Value = [&](const char *Prefix) -> std::string {
      return A.substr(std::strlen(Prefix));
    };
    if (A.rfind("--seed=", 0) == 0) {
      O.Seed = std::strtoull(Value("--seed=").c_str(), nullptr, 0);
      O.HaveSeed = true;
    } else if (A.rfind("--count=", 0) == 0) {
      O.Count = std::strtoull(Value("--count=").c_str(), nullptr, 0);
    } else if (A.rfind("--mode=", 0) == 0) {
      O.Mode = Value("--mode=");
      if (O.Mode != "prog" && O.Mode != "api" && O.Mode != "both" &&
          O.Mode != "static-parity" && O.Mode != "multi-session")
        usageError("unknown mode '" + O.Mode + "'");
    } else if (A.rfind("--steps=", 0) == 0) {
      O.Steps = unsigned(std::strtoul(Value("--steps=").c_str(), nullptr, 0));
    } else if (A.rfind("--out=", 0) == 0) {
      O.OutDir = Value("--out=");
    } else if (A == "--reduce") {
      O.Reduce = true;
    } else if (A == "--print") {
      O.Print = true;
    } else if (A == "--no-fork") {
      O.Fork = false;
    } else if (A.rfind("--streams=", 0) == 0) {
      O.AsyncStreams =
          unsigned(std::strtoul(Value("--streams=").c_str(), nullptr, 0));
      if (O.AsyncStreams == 0)
        usageError("--streams wants a positive count (--no-async skips "
                   "the async configuration)");
    } else if (A == "--no-async") {
      O.AsyncStreams = 0;
    } else if (A.rfind("--devices=", 0) == 0) {
      O.Devices =
          unsigned(std::strtoul(Value("--devices=").c_str(), nullptr, 0));
      if (O.Devices == 0)
        usageError("--devices wants a positive count (--no-multidev skips "
                   "the multi-device configuration)");
    } else if (A == "--no-multidev") {
      O.Devices = 1;
    } else if (A == "--no-xlat-cache") {
      O.XlatCache = false;
    } else if (A == "--help" || A == "-h") {
      usageError("help");
    } else {
      usageError("unknown argument '" + A + "'");
    }
  }
  if (O.Reduce && !O.HaveSeed)
    usageError("--reduce needs --seed=N");
  if (O.Reduce && O.Mode != "prog")
    usageError("--reduce only applies to generated programs (--mode=prog); "
               "API sessions minimize by lowering --steps");
  return O;
}

/// Runs \p Body in a forked child, capturing its combined output through a
/// pipe. The child exits 0 when the candidate passes, 1 when it fails;
/// any other exit (or a signal — reportFatalError aborts) is a crash.
Verdict runIsolated(bool Fork, const std::function<Verdict()> &Body) {
  if (!Fork)
    return Body();

  int Pipe[2];
  if (pipe(Pipe) != 0) {
    std::perror("cgcm-fuzz: pipe");
    std::exit(2);
  }
  pid_t Pid = fork();
  if (Pid < 0) {
    std::perror("cgcm-fuzz: fork");
    std::exit(2);
  }
  if (Pid == 0) {
    close(Pipe[0]);
    dup2(Pipe[1], 1);
    dup2(Pipe[1], 2);
    close(Pipe[1]);
    Verdict V = Body();
    if (!V.Detail.empty())
      std::fputs(V.Detail.c_str(), stderr);
    std::fflush(nullptr);
    _exit(V.Failed ? 1 : 0);
  }
  close(Pipe[1]);
  std::string Captured;
  char Buf[4096];
  ssize_t N;
  while ((N = read(Pipe[0], Buf, sizeof(Buf))) > 0)
    Captured.append(Buf, size_t(N));
  close(Pipe[0]);
  int Status = 0;
  waitpid(Pid, &Status, 0);

  Verdict V;
  V.Detail = Captured;
  if (WIFEXITED(Status) && WEXITSTATUS(Status) == 0)
    return V;
  V.Failed = true;
  if (WIFSIGNALED(Status)) {
    V.Crashed = true;
    V.Detail += "\n[child killed by signal " +
                std::to_string(WTERMSIG(Status)) + "]\n";
  } else if (WIFEXITED(Status) && WEXITSTATUS(Status) != 1) {
    V.Crashed = true;
    V.Detail += "\n[child exited with status " +
                std::to_string(WEXITSTATUS(Status)) + "]\n";
  }
  return V;
}

Verdict checkProgramSeed(uint64_t Seed, bool Fork, unsigned AsyncStreams,
                         unsigned Devices, bool XlatCache) {
  return runIsolated(Fork, [Seed, AsyncStreams, Devices, XlatCache] {
    Verdict V;
    ProgDesc P = generateProgram(Seed);
    DiffResult R = diffProgram(P.render(), "seed" + std::to_string(Seed),
                               AsyncStreams, Devices, XlatCache);
    if (!R.Agreed) {
      V.Failed = true;
      V.Detail = R.Failure;
    }
    return V;
  });
}

/// False-positive sweep for the static lifecycle checker: a seed the
/// differential harness *accepts* (all execution configurations agree,
/// no runtime contract violation) must not be rejected by the static
/// checker — any error-severity finding on such a program is a false
/// positive. Hazard *warnings* are allowed: they flag data-dependent
/// patterns that are suspicious but not provably wrong.
Verdict checkStaticParitySeed(uint64_t Seed, bool Fork) {
  return runIsolated(Fork, [Seed] {
    Verdict V;
    ProgDesc P = generateProgram(Seed);
    std::string Name = "seed" + std::to_string(Seed);
    DiffResult R = diffProgram(P.render(), Name, /*AsyncStreams=*/0);
    if (!R.Agreed)
      return V; // Dynamically failing seeds are the differ's findings.
    std::unique_ptr<Module> M = compileMiniC(P.render(), Name);
    PipelineOptions Opts; // Defaults: full optimized schedule.
    runCGCMPipeline(*M, Opts);
    CommCostReport Rep = runCommCostAnalysis(*M);
    for (const Diagnostic &D : Rep.Diagnostics) {
      if (D.Severity != DiagSeverity::Error)
        continue;
      V.Failed = true;
      V.Detail += "static false positive (differ accepts, checker "
                  "rejects): " +
                  D.getString() + "\n";
    }
    return V;
  });
}

Verdict checkApiSeed(uint64_t Seed, unsigned Steps, bool Fork) {
  return runIsolated(Fork, [Seed, Steps] {
    Verdict V;
    ApiFuzzResult R = runApiFuzz(Seed, Steps);
    if (R.Failed) {
      V.Failed = true;
      V.Detail = R.Failure;
    }
    return V;
  });
}

Verdict checkMultiSessionSeed(uint64_t Seed, unsigned Steps, bool Fork) {
  return runIsolated(Fork, [Seed, Steps] {
    Verdict V;
    MultiSessionFuzzResult R = runApiFuzzMultiSession(Seed, Steps);
    if (R.Failed) {
      V.Failed = true;
      V.Detail = R.Failure;
    }
    return V;
  });
}

void writeArtifacts(const std::string &OutDir, const std::string &Kind,
                    uint64_t Seed, const std::string &Source,
                    const std::string &Report) {
  if (OutDir.empty())
    return;
  ::mkdir(OutDir.c_str(), 0755); // Best effort; open errors reported below.
  std::string Stem = OutDir + "/" + Kind + "_seed_" + std::to_string(Seed);
  if (!Source.empty()) {
    std::ofstream OS(Stem + ".minic");
    if (!OS)
      std::cerr << "cgcm-fuzz: cannot write " << Stem << ".minic\n";
    OS << Source;
  }
  std::ofstream RS(Stem + ".txt");
  if (!RS)
    std::cerr << "cgcm-fuzz: cannot write " << Stem << ".txt\n";
  RS << Report;
}

int runReduce(const ToolOptions &O) {
  ProgDesc P = generateProgram(O.Seed);
  std::cerr << "reducing seed " << O.Seed << " (" << P.numEnabledOps()
            << " ops)...\n";
  auto StillFails = [&O](const ProgDesc &Candidate) {
    // Each candidate runs isolated: crashing candidates count as failing.
    Verdict V = runIsolated(O.Fork, [&Candidate, &O] {
      Verdict Inner;
      DiffResult R = diffProgram(Candidate.render(), "reduce",
                                 O.AsyncStreams, O.Devices, O.XlatCache);
      if (!R.Agreed) {
        Inner.Failed = true;
        Inner.Detail = R.Failure;
      }
      return Inner;
    });
    return V.Failed;
  };
  ReduceStats Stats;
  ProgDesc Min = reduceProgram(P, StillFails, &Stats);
  if (Stats.OpsAfter == Stats.OpsBefore && Stats.CandidatesTried == 1) {
    std::cerr << "cgcm-fuzz: seed " << O.Seed
              << " does not fail; nothing to reduce\n";
    return 2;
  }
  std::cerr << "reduced " << Stats.OpsBefore << " -> " << Stats.OpsAfter
            << " ops in " << Stats.CandidatesTried << " runs\n";
  std::cout << Min.render();
  writeArtifacts(O.OutDir, "reduced", O.Seed, Min.render(),
                 "ops " + std::to_string(Stats.OpsBefore) + " -> " +
                     std::to_string(Stats.OpsAfter));
  return 0;
}

} // namespace

int main(int Argc, char **Argv) {
  ToolOptions O = parseArgs(Argc, Argv);

  if (O.Print) {
    if (!O.HaveSeed)
      usageError("--print needs --seed=N");
    std::cout << generateProgram(O.Seed).render();
    return 0;
  }
  if (O.Reduce)
    return runReduce(O);

  uint64_t First = O.HaveSeed ? O.Seed : 0;
  uint64_t Count = O.HaveSeed && O.Count == 1 ? 1 : O.Count;
  uint64_t Failures = 0, Crashes = 0;

  for (uint64_t S = First; S != First + Count; ++S) {
    if (O.Mode == "prog" || O.Mode == "both") {
      Verdict V = checkProgramSeed(S, O.Fork, O.AsyncStreams, O.Devices,
                                   O.XlatCache);
      if (V.Failed) {
        ++Failures;
        Crashes += V.Crashed;
        std::cerr << "FAIL prog seed " << S << (V.Crashed ? " (crash)" : "")
                  << "\n" << V.Detail << "\n";
        writeArtifacts(O.OutDir, "prog", S, generateProgram(S).render(),
                       V.Detail);
      }
    }
    if (O.Mode == "static-parity") {
      Verdict V = checkStaticParitySeed(S, O.Fork);
      if (V.Failed) {
        ++Failures;
        Crashes += V.Crashed;
        std::cerr << "FAIL static-parity seed " << S
                  << (V.Crashed ? " (crash)" : "") << "\n"
                  << V.Detail << "\n";
        writeArtifacts(O.OutDir, "static_parity", S,
                       generateProgram(S).render(), V.Detail);
      }
    }
    if (O.Mode == "multi-session") {
      Verdict V = checkMultiSessionSeed(S, O.Steps, O.Fork);
      if (V.Failed) {
        ++Failures;
        Crashes += V.Crashed;
        std::cerr << "FAIL multi-session seed " << S
                  << (V.Crashed ? " (crash)" : "") << "\n"
                  << V.Detail << "\n";
        writeArtifacts(O.OutDir, "multi_session", S, /*Source=*/"", V.Detail);
      }
    }
    if (O.Mode == "api" || O.Mode == "both") {
      Verdict V = checkApiSeed(S, O.Steps, O.Fork);
      if (V.Failed) {
        ++Failures;
        Crashes += V.Crashed;
        std::cerr << "FAIL api seed " << S << (V.Crashed ? " (crash)" : "")
                  << "\n" << V.Detail << "\n";
        writeArtifacts(O.OutDir, "api", S, /*Source=*/"", V.Detail);
      }
    }
    // Progress heartbeat for long sweeps.
    if (Count >= 100 && (S - First + 1) % 100 == 0)
      std::cerr << "... " << (S - First + 1) << "/" << Count << " seeds, "
                << Failures << " failures\n";
  }

  uint64_t Sessions =
      Count * (O.Mode == "both" || O.Mode == "multi-session" ? 2 : 1);
  std::cerr << "cgcm-fuzz: " << Sessions << " session(s), " << Failures
            << " failure(s)";
  if (Crashes)
    std::cerr << " (" << Crashes << " fatal)";
  std::cerr << "\n";
  return Failures ? 1 : 0;
}
