//===- tools/cgcm-metrics-diff.cpp - Cross-run metric regression gate -------===//
//
// Part of the CGCM reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Compares two observability artifacts — `cgcm-metrics-v1` or
/// `cgcm-bench-v1` JSON, in any combination — series by series and exits
/// nonzero when the candidate regressed (or lost) a series the baseline
/// had. The flattening and classification live in support/MetricsDiff.h;
/// this driver only parses flags and files.
///
///   cgcm-metrics-diff baseline.json current.json
///   cgcm-metrics-diff --threshold=0.05 base.json cur.json
///   cgcm-metrics-diff --threshold=cycles=0.02 base.json cur.json
///   cgcm-metrics-diff --include-noisy --verbose base.json cur.json
///
/// Exit codes: 0 = no regression, 1 = regression or missing series,
/// 2 = usage or parse error.
///
//===----------------------------------------------------------------------===//

#include "support/MetricsDiff.h"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

using namespace cgcm;

namespace {

void usage() {
  std::fprintf(
      stderr,
      "usage: cgcm-metrics-diff [options] <baseline.json> <current.json>\n"
      "  --threshold=<f>          relative growth that counts as a\n"
      "                           regression (default 0.15)\n"
      "  --threshold=<substr>=<f> per-series override for names containing\n"
      "                           <substr> (repeatable; last match wins)\n"
      "  --include-noisy          compare host wall-time series too\n"
      "                           (host_ns / host-ns / wall_ms / wall_us;\n"
      "                           skipped by default: they vary per run)\n"
      "  --rename=<old>=<new>     treat baseline series with prefix <old>\n"
      "                           as renamed to prefix <new>: a note, not\n"
      "                           a MISSING failure, when the new series\n"
      "                           exists (repeatable; the known project\n"
      "                           renames are built in)\n"
      "  --verbose                print every compared series, not only\n"
      "                           the notable ones\n"
      "inputs may be cgcm-metrics-v1 or cgcm-bench-v1, in any combination\n"
      "exit: 0 ok, 1 regression or missing series, 2 usage/parse error\n");
}

bool readFile(const std::string &Path, std::string &Out) {
  std::ifstream In(Path);
  if (!In)
    return false;
  std::ostringstream Buf;
  Buf << In.rdbuf();
  Out = Buf.str();
  return true;
}

} // namespace

int main(int Argc, char **Argv) {
  DiffOptions Opts;
  bool Verbose = false;
  std::string BasePath, CurPath;
  for (int I = 1; I != Argc; ++I) {
    std::string A = Argv[I];
    if (A.rfind("--threshold=", 0) == 0) {
      std::string Spec = A.substr(12);
      size_t Eq = Spec.rfind('=');
      std::string Num = Eq == std::string::npos ? Spec : Spec.substr(Eq + 1);
      char *End = nullptr;
      double F = std::strtod(Num.c_str(), &End);
      if (Num.empty() || !End || *End != '\0' || F < 0) {
        std::fprintf(stderr, "cgcm-metrics-diff: bad threshold '%s'\n",
                     A.c_str());
        usage();
        return 2;
      }
      if (Eq == std::string::npos)
        Opts.Threshold = F;
      else
        Opts.Overrides.emplace_back(Spec.substr(0, Eq), F);
    } else if (A.rfind("--rename=", 0) == 0) {
      std::string Spec = A.substr(9);
      size_t Eq = Spec.find('=');
      if (Eq == std::string::npos || Eq == 0 || Eq + 1 == Spec.size()) {
        std::fprintf(stderr, "cgcm-metrics-diff: bad rename '%s'\n", A.c_str());
        usage();
        return 2;
      }
      Opts.Renames.emplace_back(Spec.substr(0, Eq), Spec.substr(Eq + 1));
    } else if (A == "--include-noisy")
      Opts.IncludeNoisy = true;
    else if (A == "--verbose")
      Verbose = true;
    else if (A == "--help" || A == "-h") {
      usage();
      return 0;
    } else if (!A.empty() && A[0] == '-') {
      std::fprintf(stderr, "cgcm-metrics-diff: unknown option '%s'\n",
                   A.c_str());
      usage();
      return 2;
    } else if (BasePath.empty())
      BasePath = A;
    else if (CurPath.empty())
      CurPath = A;
    else {
      std::fprintf(stderr, "cgcm-metrics-diff: too many inputs\n");
      usage();
      return 2;
    }
  }
  if (BasePath.empty() || CurPath.empty()) {
    usage();
    return 2;
  }

  std::string BaseText, CurText;
  if (!readFile(BasePath, BaseText)) {
    std::fprintf(stderr, "cgcm-metrics-diff: cannot read '%s'\n",
                 BasePath.c_str());
    return 2;
  }
  if (!readFile(CurPath, CurText)) {
    std::fprintf(stderr, "cgcm-metrics-diff: cannot read '%s'\n",
                 CurPath.c_str());
    return 2;
  }

  MetricSeries Base, Cur;
  std::string Err;
  if (!extractSeriesFromText(BaseText, Base, &Err)) {
    std::fprintf(stderr, "cgcm-metrics-diff: %s: %s\n", BasePath.c_str(),
                 Err.c_str());
    return 2;
  }
  if (!extractSeriesFromText(CurText, Cur, &Err)) {
    std::fprintf(stderr, "cgcm-metrics-diff: %s: %s\n", CurPath.c_str(),
                 Err.c_str());
    return 2;
  }

  DiffResult R = diffSeries(Base, Cur, Opts);
  printDiffReport(std::cout, R, Verbose);
  return R.failed() ? 1 : 0;
}
