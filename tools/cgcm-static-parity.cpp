//===- tools/cgcm-static-parity.cpp - Static-vs-dynamic ledger parity --------===//
//
// Part of the CGCM reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Cross-validates the static communication-cost analysis against the
/// dynamic TransferLedger over the full workload suite: each workload is
/// compiled through the default (optimized, synchronous) pipeline, the
/// static prediction is computed on the exact module that will execute,
/// the program runs, and the two ledgers are joined row-by-row by site
/// key. The soundness contract enforced here:
///
///  * every dynamic site must have a predicted row;
///  * where the prediction marks a site *exact*, every counter must be a
///    constant equal to the dynamic value;
///  * where it does not, constant counters must be >= the dynamic value
///    (sound upper bound); symbolic counters make no numeric claim;
///  * the workloads are diagnostic-clean: any lifecycle finding on a
///    correct program is a false positive and fails the run;
///  * the run itself uses no demand paging (DemandFaults == 0), so the
///    ledger only contains traffic the static model covers.
///
/// Exit code 0 = parity holds on every selected workload.
///
//===----------------------------------------------------------------------===//

#include "analysis/commcost/CommCost.h"
#include "runtime/TransferLedger.h"
#include "workloads/Runner.h"
#include "workloads/Workloads.h"

#include <cstring>
#include <iostream>
#include <string>
#include <vector>

using namespace cgcm;

namespace {

struct Options {
  std::string Only; ///< Run a single workload by name.
  bool Verbose = false;
};

struct CounterCheck {
  const char *Name;
  const SymExpr *Predicted;
  uint64_t Actual;
};

/// Joins one workload's prediction against its dynamic ledger; returns
/// the number of violations (each printed on stderr).
unsigned checkWorkload(const Workload &W, const WorkloadRun &R,
                       bool Verbose) {
  unsigned Violations = 0;
  auto Fail = [&](const std::string &Msg) {
    std::cerr << "[" << W.Name << "] PARITY VIOLATION: " << Msg << "\n";
    ++Violations;
  };

  const CommCostReport &P = R.StaticCost;

  if (R.Stats.DemandFaults != 0)
    Fail("run used demand paging (" + std::to_string(R.Stats.DemandFaults) +
         " faults); the static model does not cover demand traffic");

  for (const Diagnostic &D : P.Diagnostics)
    Fail("false positive on a correct program: " + D.getString());

  if (!P.Sound)
    Fail("analysis reported itself unsound on a workload it must cover");

  for (const auto &[Site, E] : R.Ledger.entries()) {
    const SitePrediction *SP = P.findSite(Site);
    if (!SP) {
      Fail("dynamic site '" + Site + "' has no predicted row (" +
           std::to_string(E.totalBytes()) + " bytes unaccounted)");
      continue;
    }
    const CounterCheck Checks[] = {
        {"units", &SP->Units, E.Units},
        {"bytes_htod", &SP->BytesHtoD, E.BytesHtoD},
        {"bytes_dtoh", &SP->BytesDtoH, E.BytesDtoH},
        {"transfers_htod", &SP->TransfersHtoD, E.TransfersHtoD},
        {"transfers_dtoh", &SP->TransfersDtoH, E.TransfersDtoH},
        {"epoch_suppressed", &SP->EpochSuppressed, E.EpochSuppressed},
        {"reuse_suppressed", &SP->ReuseSuppressed, E.ReuseSuppressed},
        {"map_calls", &SP->MapCalls, E.MapCalls},
        {"unmap_calls", &SP->UnmapCalls, E.UnmapCalls},
        {"release_calls", &SP->ReleaseCalls, E.ReleaseCalls},
    };
    for (const CounterCheck &C : Checks) {
      if (SP->Exact) {
        if (!C.Predicted->isConst()) {
          Fail("site '" + Site + "' is marked exact but " + C.Name +
               " is symbolic: " + C.Predicted->getString());
          continue;
        }
        if ((uint64_t)C.Predicted->getConst() != C.Actual)
          Fail("site '" + Site + "' " + C.Name + ": predicted " +
               std::to_string(C.Predicted->getConst()) + ", actual " +
               std::to_string(C.Actual));
      } else if (C.Predicted->isConst() &&
                 (uint64_t)C.Predicted->getConst() < C.Actual) {
        Fail("site '" + Site + "' " + C.Name + ": predicted upper bound " +
             std::to_string(C.Predicted->getConst()) + " < actual " +
             std::to_string(C.Actual));
      }
    }
    // The synchronous pipeline never coalesces; anything else means the
    // configuration is not the one the contract is stated for.
    if (E.Coalesced != 0)
      Fail("site '" + Site + "' has coalesced copies in synchronous mode");
  }

  // Predicted-but-silent sites are fine only as upper bounds (the
  // dynamic value is zero everywhere); an exact site that never
  // materialized with nonzero counters is a prediction bug.
  for (const SitePrediction &SP : P.Sites) {
    if (R.Ledger.entries().count(SP.Site))
      continue;
    if (SP.Exact && SP.Units.isConst() && SP.Units.getConst() != 0)
      Fail("exact site '" + SP.Site +
           "' predicted units but never materialized dynamically");
  }

  if (Verbose && !Violations) {
    std::cout << "[" << W.Name << "] OK: " << P.Sites.size()
              << " sites predicted, " << R.Ledger.entries().size()
              << " dynamic, exact=" << (P.Exact ? "yes" : "no")
              << ", launches=" << P.KernelLaunches.getString() << "\n";
  }
  return Violations;
}

void usage() {
  std::cout
      << "usage: cgcm-static-parity [options]\n"
         "\n"
         "Validates static transfer-ledger predictions against dynamic\n"
         "ground truth over the workload suite (docs/StaticAnalysis.md).\n"
         "\n"
         "  --workload=<name>  check a single workload\n"
         "  --verbose          per-workload summary lines\n"
         "  --devices=<n>      out of scope beyond 1: the static model\n"
         "                     predicts the single-device schedule, so\n"
         "                     asking for multi-device parity fails fast\n"
         "  --sessions=<n>     out of scope beyond 1: parity is defined\n"
         "                     against one solo run; concurrent tenants\n"
         "                     share device capacity through the server's\n"
         "                     eviction policy (docs/Server.md)\n"
         "  --help             this text\n";
}

} // namespace

int main(int Argc, char **Argv) {
  Options Opt;
  for (int I = 1; I < Argc; ++I) {
    std::string A = Argv[I];
    if (A == "--help" || A == "-h") {
      usage();
      return 0;
    } else if (A == "--verbose" || A == "-v") {
      Opt.Verbose = true;
    } else if (A.rfind("--workload=", 0) == 0) {
      Opt.Only = A.substr(strlen("--workload="));
    } else if (A.rfind("--sessions=", 0) == 0) {
      int N = std::atoi(A.c_str() + 11);
      if (N > 1) {
        // Same out-of-scope shape as --devices: the static ledger is a
        // solo-run prediction. Under multi-tenancy the server's quota
        // eviction changes *when* copies happen, never what the program
        // computes — but parity is a per-copy byte count, so it is only
        // meaningful against the solo schedule.
        std::cerr << "cgcm-static-parity: multi-session runs are out of "
                     "scope — the static ledger predicts one solo "
                     "session's schedule and has no model of the server's "
                     "quota eviction (rerun with --sessions=1, or measure "
                     "the multi-session schedule with "
                     "bench/server_throughput)\n";
        return 2;
      }
    } else if (A.rfind("--devices=", 0) == 0) {
      int N = std::atoi(A.c_str() + 10);
      if (N > 1) {
        // The predictor prices the single-device schedule; sharded
        // placement and peer traffic have no static counterpart, so a
        // multi-device parity request cannot be satisfied.
        std::cerr << "cgcm-static-parity: multi-device runs are out of "
                     "scope — the static ledger predicts the "
                     "single-device schedule and has no model of sharded "
                     "placement or peer-to-peer traffic (rerun with "
                     "--devices=1, or validate multi-device runs "
                     "dynamically via cgcm-metrics-diff)\n";
        return 2;
      }
    } else {
      std::cerr << "cgcm-static-parity: unknown option '" << A << "'\n";
      usage();
      return 2;
    }
  }

  RunnerOptions RO;
  RO.PredictStaticCost = true;

  unsigned Checked = 0, Violations = 0;
  for (const Workload &W : getWorkloads()) {
    if (!Opt.Only.empty() && W.Name != Opt.Only)
      continue;
    WorkloadRun R = runWorkload(W, BenchConfig::CGCMOptimized, RO);
    Violations += checkWorkload(W, R, Opt.Verbose);
    ++Checked;
  }

  if (!Opt.Only.empty() && Checked == 0) {
    std::cerr << "cgcm-static-parity: no workload named '" << Opt.Only
              << "'\n";
    return 2;
  }

  std::cout << "cgcm-static-parity: " << Checked << " workload(s), "
            << Violations << " violation(s)\n";
  return Violations ? 1 : 0;
}
