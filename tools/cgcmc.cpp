//===- tools/cgcmc.cpp - The CGCM compiler driver ------------------------------===//
//
// Part of the CGCM reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Command-line driver: compiles a MiniC file, runs the CGCM pipeline,
/// and executes the program on the simulated machine (or dumps IR).
///
///   cgcmc prog.minic                  # full pipeline, managed execution
///   cgcmc --no-parallelize prog.minic # manual launches only
///   cgcmc --no-manage prog.minic      # stop before management (will trap!)
///   cgcmc --no-optimize prog.minic    # Listing-3-style cyclic management
///   cgcmc --policy=ie prog.minic      # inspector-executor baseline
///   cgcmc --policy=seq prog.minic     # sequential CPU baseline
///   cgcmc --dump-ir[=stage] prog.minic  # print IR (stage: front, ssa,
///                                       # doall, managed, opt)
///   cgcmc --stats prog.minic          # print execution statistics
///   cgcmc saved.ir                    # run previously dumped IR as-is
///   cgcmc --applicability prog.minic  # per-launch framework applicability
///   cgcmc --analyze prog.minic        # static checkers only, no execution
///   cgcmc --analyze --Werror prog.minic # warnings fail the analysis too
///   cgcmc --trace=t.json prog.minic   # Chrome trace of the execution
///   cgcmc --profile=p.json prog.minic # stats + transfer ledger as JSON
///   cgcmc --remarks prog.minic        # print optimization remarks
///   cgcmc --passes='mem2reg,doall,comm,fixpoint(glue,map-promote)' p.minic
///                                     # run an explicit pass pipeline
///   cgcmc --time-passes prog.minic    # per-pass timing + analysis-cache
///                                     # counters to stderr
///   cgcmc --verify-each prog.minic    # verify IR + analysis freshness
///                                     # after every pass
///   cgcmc --print-after=comm p.minic  # dump IR after the named pass
///                                     # ('*' = after every pass)
///   cgcmc --streams=4 prog.minic      # asynchronous transfer engine with
///                                     # 4 DMA streams (overlap+coalescing)
///   cgcmc --no-async prog.minic       # force the synchronous model (the
///                                     # default; overrides --streams)
///   cgcmc --no-coalesce prog.minic    # async without transfer coalescing
///
//===----------------------------------------------------------------------===//

#include "analysis/checkers/Checkers.h"
#include "analysis/commcost/CommCost.h"
#include "exec/Machine.h"
#include "server/SessionManager.h"
#include "workloads/Runner.h"
#include "frontend/IRGen.h"
#include "ir/IRParser.h"
#include "runtime/TransferLedger.h"
#include "support/JSON.h"
#include "support/Metrics.h"
#include "transform/Applicability.h"
#include "transform/AllocaPromotion.h"
#include "transform/CommManagement.h"
#include "transform/DOALL.h"
#include "transform/GlueKernels.h"
#include "transform/MapPromotion.h"
#include "transform/Pipeline.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <set>
#include <sstream>
#include <string>

using namespace cgcm;

namespace {

struct Options {
  std::string InputPath;
  bool Parallelize = true;
  bool Manage = true;
  bool Optimize = true;
  bool Stats = false;
  bool Applicability = false;
  bool Analyze = false;
  /// --analyze=cost: static transfer-ledger prediction + lifecycle
  /// verification over the fully-managed module; JSON on stdout.
  bool AnalyzeCost = false;
  bool Werror = false;
  std::string DumpStage; ///< Empty = no dump; "opt" dumps the final IR.
  LaunchPolicy Policy = LaunchPolicy::Managed;
  std::string TracePath;   ///< --trace=<file>: structured event trace.
  std::string ProfilePath; ///< --profile=<file>: stats + ledger JSON.
  bool Remarks = false;    ///< --remarks: print optimization remarks.
  std::string RemarksFilter; ///< --remarks=<substr>: filter by remark ID.
  std::string Passes;      ///< --passes=<pipeline>: explicit pass list.
  bool TimePasses = false; ///< --time-passes: per-pass timing report.
  bool VerifyEach = false; ///< --verify-each: verify after every pass.
  std::string PrintAfter;  ///< --print-after=<pass>: staged IR dumps.
  unsigned Streams = 0;    ///< --streams=<n>: async transfer engine lanes
                           ///< (0 = synchronous model, the default).
  bool Coalesce = true;    ///< --no-coalesce: disable DMA batching.
  unsigned Devices = 1;    ///< --devices=<n>: simulated GPUs in the pool.
  PlacementPolicy Placement = PlacementPolicy::RoundRobin;
  bool Metrics = false;    ///< --metrics[=file]: cgcm-metrics-v1 JSON.
  std::string MetricsPath; ///< Empty with Metrics set = write to stderr.
  bool MetricsReport = false; ///< --metrics-report: attribution table.
  /// --interp=table|switch: interpreter dispatch strategy (both are
  /// observationally identical; switch is the reference walk).
  DispatchMode Dispatch = DispatchMode::Table;
  bool XlatCache = true; ///< --no-xlat-cache: disable the per-call-site
                         ///< translation cache in the runtime.
  /// --sessions=<n>: run the program as <n> concurrent tenants of the
  /// runtime server and verify every session's output bit-identical to
  /// the solo run (docs/Server.md). 1 = the ordinary single machine.
  unsigned Sessions = 1;
};

void usage() {
  std::fprintf(
      stderr,
      "usage: cgcmc [options] <input.minic>\n"
      "  --no-parallelize    skip the DOALL parallelizer\n"
      "  --no-manage         skip communication management (kernels trap)\n"
      "  --no-optimize       skip glue/alloca/map promotion\n"
      "  --policy=<p>        managed | trap | ie | seq (default managed)\n"
      "  --dump-ir[=stage]   print IR: front, ssa, doall, managed, opt\n"
      "  --stats             print execution statistics\n"
      "  --applicability     print per-launch framework applicability\n"
      "  --analyze           run the static checkers, do not execute\n"
      "  --analyze=cost      predict the transfer ledger statically over\n"
      "                      the fully-managed module and verify every\n"
      "                      allocation unit's lifecycle; emits the\n"
      "                      cgcm-static-cost-v1 JSON on stdout and\n"
      "                      sorted diagnostics on stderr\n"
      "  --Werror            with --analyze, warnings fail the analysis\n"
      "  --trace=<file>      write a Chrome trace_event JSON of the\n"
      "                      execution (.jsonl extension: one event per\n"
      "                      line instead)\n"
      "  --profile=<file>    write execution stats + the per-allocation-\n"
      "                      site transfer ledger as JSON\n"
      "  --remarks[=filter]  print optimization remarks (optionally only\n"
      "                      those whose ID contains <filter>)\n"
      "  --passes=<list>     run an explicit pass pipeline instead of the\n"
      "                      default schedule; grammar: name[,name...],\n"
      "                      with fixpoint(...) groups. Passes: mem2reg,\n"
      "                      doall, comm, glue, alloca-promote,\n"
      "                      map-promote, simplify, verify, verify-par\n"
      "  --time-passes       per-pass wall time, IR-size delta, and\n"
      "                      analysis construction/hit counters (stderr)\n"
      "  --verify-each       verify the IR and analysis-cache freshness\n"
      "                      after every pass\n"
      "  --print-after=<p>   dump IR after pass <p> ('*' = every pass)\n"
      "  --streams=<n>       enable the asynchronous transfer engine with\n"
      "                      <n> DMA streams (>=2 overlaps copies with\n"
      "                      compute; see docs/TransferEngine.md)\n"
      "  --no-async          force the synchronous transfer model (the\n"
      "                      default; overrides an earlier --streams)\n"
      "  --no-coalesce       with --streams, disable coalescing of\n"
      "                      adjacent same-direction copies into batches\n"
      "  --devices=<n>       execute on a pool of <n> simulated GPUs\n"
      "                      (default 1; shardable DOALL kernels split\n"
      "                      their iteration space; docs/MultiGPU.md)\n"
      "  --placement=<p>     with --devices, allocation-unit placement:\n"
      "                      rr (round-robin, default) or bytes\n"
      "                      (bytes-balanced)\n"
      "  --metrics[=<file>]  write the process-wide metrics registry as\n"
      "                      cgcm-metrics-v1 JSON (stderr without <file>),\n"
      "                      including the wall-clock attribution section\n"
      "  --metrics-report    print a human-readable wall-clock attribution\n"
      "                      report (compute / HtoD / DtoH / stalls by\n"
      "                      cause / host, per stream) to stderr\n"
      "  --interp=<mode>     interpreter dispatch: table (precomputed\n"
      "                      handler table, the default) or switch (the\n"
      "                      reference tree walk); outputs are identical\n"
      "  --no-xlat-cache     disable the runtime's per-call-site address\n"
      "                      translation cache (the radix index and the\n"
      "                      tree fallback still serve lookups)\n"
      "  --sessions=<n>      execute as <n> concurrent sessions of the\n"
      "                      multi-tenant runtime server and check every\n"
      "                      output bit-identical to running alone\n"
      "                      (docs/Server.md)\n");
}

bool parseArgs(int Argc, char **Argv, Options &O) {
  for (int I = 1; I != Argc; ++I) {
    std::string A = Argv[I];
    if (A == "--no-parallelize")
      O.Parallelize = false;
    else if (A == "--no-manage")
      O.Manage = false;
    else if (A == "--no-optimize")
      O.Optimize = false;
    else if (A == "--stats")
      O.Stats = true;
    else if (A == "--applicability")
      O.Applicability = true;
    else if (A == "--analyze")
      O.Analyze = true;
    else if (A == "--analyze=cost") {
      O.Analyze = true;
      O.AnalyzeCost = true;
    } else if (A.rfind("--analyze=", 0) == 0) {
      std::fprintf(stderr, "cgcmc: unknown analysis '%s' (try 'cost')\n",
                   A.c_str() + 10);
      return false;
    } else if (A == "--Werror")
      O.Werror = true;
    else if (A == "--remarks")
      O.Remarks = true;
    else if (A.rfind("--remarks=", 0) == 0) {
      O.Remarks = true;
      O.RemarksFilter = A.substr(10);
    } else if (A.rfind("--passes=", 0) == 0)
      O.Passes = A.substr(9);
    else if (A == "--time-passes")
      O.TimePasses = true;
    else if (A == "--verify-each")
      O.VerifyEach = true;
    else if (A.rfind("--print-after=", 0) == 0)
      O.PrintAfter = A.substr(14);
    else if (A.rfind("--streams=", 0) == 0) {
      int N = std::atoi(A.c_str() + 10);
      if (N < 1) {
        std::fprintf(stderr, "cgcmc: --streams wants a positive count\n");
        return false;
      }
      O.Streams = static_cast<unsigned>(N);
    } else if (A == "--no-async")
      O.Streams = 0;
    else if (A == "--no-coalesce")
      O.Coalesce = false;
    else if (A.rfind("--devices=", 0) == 0) {
      int N = std::atoi(A.c_str() + 10);
      if (N < 1) {
        std::fprintf(stderr, "cgcmc: --devices wants a positive count\n");
        return false;
      }
      O.Devices = static_cast<unsigned>(N);
    } else if (A.rfind("--sessions=", 0) == 0) {
      int N = std::atoi(A.c_str() + 11);
      if (N < 1) {
        std::fprintf(stderr, "cgcmc: --sessions wants a positive count\n");
        return false;
      }
      O.Sessions = static_cast<unsigned>(N);
    } else if (A.rfind("--placement=", 0) == 0) {
      std::string P = A.substr(12);
      if (P == "rr")
        O.Placement = PlacementPolicy::RoundRobin;
      else if (P == "bytes")
        O.Placement = PlacementPolicy::BytesBalanced;
      else {
        std::fprintf(stderr, "cgcmc: unknown placement '%s' (rr|bytes)\n",
                     P.c_str());
        return false;
      }
    }
    else if (A.rfind("--interp=", 0) == 0) {
      std::string D = A.substr(9);
      if (D == "table")
        O.Dispatch = DispatchMode::Table;
      else if (D == "switch")
        O.Dispatch = DispatchMode::Switch;
      else {
        std::fprintf(stderr, "cgcmc: unknown dispatch '%s' (table|switch)\n",
                     D.c_str());
        return false;
      }
    } else if (A == "--no-xlat-cache")
      O.XlatCache = false;
    else if (A == "--metrics")
      O.Metrics = true;
    else if (A.rfind("--metrics=", 0) == 0) {
      O.Metrics = true;
      O.MetricsPath = A.substr(10);
    } else if (A == "--metrics-report")
      O.MetricsReport = true;
    else if (A.rfind("--trace=", 0) == 0)
      O.TracePath = A.substr(8);
    else if (A.rfind("--profile=", 0) == 0)
      O.ProfilePath = A.substr(10);
    else if (A == "--dump-ir")
      O.DumpStage = "opt";
    else if (A.rfind("--dump-ir=", 0) == 0)
      O.DumpStage = A.substr(10);
    else if (A.rfind("--policy=", 0) == 0) {
      std::string P = A.substr(9);
      if (P == "managed")
        O.Policy = LaunchPolicy::Managed;
      else if (P == "trap")
        O.Policy = LaunchPolicy::Trap;
      else if (P == "ie") {
        // Inspector-executor *replaces* CGCM management (section 6.3).
        O.Policy = LaunchPolicy::InspectorExecutor;
        O.Manage = false;
      }
      else if (P == "seq") {
        // The sequential baseline is the program as written: no
        // parallelization and no management.
        O.Policy = LaunchPolicy::CpuEmulation;
        O.Parallelize = false;
        O.Manage = false;
      }
      else {
        std::fprintf(stderr, "cgcmc: unknown policy '%s'\n", P.c_str());
        return false;
      }
    } else if (A == "--help" || A == "-h") {
      usage();
      std::exit(0);
    } else if (!A.empty() && A[0] == '-') {
      std::fprintf(stderr, "cgcmc: unknown option '%s'\n", A.c_str());
      return false;
    } else if (O.InputPath.empty()) {
      O.InputPath = A;
    } else {
      std::fprintf(stderr, "cgcmc: multiple inputs\n");
      return false;
    }
  }
  return !O.InputPath.empty();
}

/// The --analyze mode (docs/StaticAnalysis.md): run every static checker
/// over the same pass schedule the compiler would apply, print the
/// findings with source positions, and never execute the program.
/// Returns the process exit code.
int runAnalysis(Module &M, const Options &O, const DOALLStats &DS) {
  DiagnosticEngine DE;
  DE.setWarningsAsErrors(O.Werror);

  // Applicability restrictions first, on pre-management IR: a degree-3
  // live-in would abort the management pass, so it must gate it.
  checkCGCMRestrictions(M, DE);

  if (!DE.hasErrors()) {
    if (O.Manage)
      insertCommunicationManagement(M);
    if (O.Manage && O.Optimize) {
      createGlueKernels(M);
      promoteAllocasUpCallGraph(M);
      promoteMaps(M);
    }
    checkCommunicationSoundness(M, DE);

    // Parallelizer-produced kernels must re-prove full independence;
    // hand-written kernels are only held to provable races.
    std::set<const Function *> DoallKernels(DS.Kernels.begin(),
                                            DS.Kernels.end());
    for (const auto &F : M.functions()) {
      if (!F->isKernel() || F->isDeclaration() || F->isGlueKernel())
        continue;
      checkKernelRaces(M, *F,
                       DoallKernels.count(F.get()) ? RaceCheckMode::Strict
                                                   : RaceCheckMode::Conservative,
                       DE);
    }
  }

  // Deterministic output: findings print in source order regardless of
  // the order the checkers discovered them in.
  std::vector<Diagnostic> Sorted = DE.getDiagnostics();
  sortDiagnostics(Sorted);
  for (const Diagnostic &D : Sorted)
    std::cerr << O.InputPath << ":" << D.getString() << "\n";
  if (DE.hasErrors())
    return 1;
  std::cerr << O.InputPath << ": analysis clean ("
            << DE.getNumWarnings() << " warnings)\n";
  return 0;
}

/// The --analyze=cost mode: static transfer-ledger prediction plus
/// lifecycle verification over the module as compiled (the full default
/// schedule, unlike plain --analyze which stops pre-management). JSON on
/// stdout, sorted diagnostics on stderr. Returns the process exit code.
int runCostAnalysis(Module &M, const Options &O) {
  if (O.Sessions > 1) {
    // Same out-of-scope shape as --devices: the static predictor prices
    // one program on one quiet machine. Concurrent tenants share device
    // capacity through the server's eviction policy, which is a runtime
    // decision the static model cannot see (docs/Server.md).
    std::fprintf(stderr,
                 "cgcmc: --analyze=cost models a single solo session; "
                 "--sessions=%u is out of scope for the static predictor "
                 "(run with --sessions=1, or measure the multi-session "
                 "schedule with bench/server_throughput)\n",
                 O.Sessions);
    return 0;
  }
  if (O.Devices > 1) {
    // The static cost model prices the single-device schedule; sharded
    // placement and peer traffic are runtime decisions it cannot see
    // (docs/MultiGPU.md). Not an error: the user asked for a prediction
    // the model explicitly scopes out.
    std::fprintf(stderr,
                 "cgcmc: --analyze=cost models a single device; "
                 "--devices=%u is out of scope for the static predictor "
                 "(run with --devices=1, or profile the multi-device "
                 "schedule dynamically)\n",
                 O.Devices);
    return 0;
  }
  CommCostReport R = runCommCostAnalysis(M);
  writeStaticCostJson(std::cout, R, M.getName());
  bool HasErrors = false;
  for (const Diagnostic &D : R.Diagnostics) {
    std::cerr << O.InputPath << ":" << D.getString() << "\n";
    if (D.Severity == DiagSeverity::Error ||
        (O.Werror && D.Severity == DiagSeverity::Warning))
      HasErrors = true;
  }
  return HasErrors ? 1 : 0;
}

/// Prints the pass-reported remarks collected in \p DE, applying the
/// --remarks=<filter> ID-substring filter.
void printRemarks(const DiagnosticEngine &DE, const Options &O) {
  for (const Diagnostic &D : DE.getDiagnostics()) {
    if (!O.RemarksFilter.empty() &&
        D.ID.find(O.RemarksFilter) == std::string::npos)
      continue;
    std::cerr << O.InputPath << ":" << D.getString() << "\n";
  }
}

/// Renders the wall-clock attribution decomposition as the JSON object
/// spliced into cgcm-metrics-v1 under the "attribution" key. Per-stream
/// idle time is the wall clock minus the stream's copy-busy cycles.
std::string renderAttributionJson(const ExecStats &S) {
  WallAttribution A = attributeWall(S);
  std::ostringstream OS;
  JsonWriter W(OS);
  W.beginObject();
  W.key("wall_cycles").number(A.Wall);
  W.key("host").number(A.Host);
  W.key("compute").number(A.Compute);
  W.key("htod").number(A.HtoD);
  W.key("dtoh").number(A.DtoH);
  W.key("stall_htod_fence").number(A.StallHtoDFence);
  W.key("stall_dtoh_fence").number(A.StallDtoHFence);
  W.key("stall_host_sync").number(A.StallHostSync);
  W.key("streams").beginArray();
  for (size_t I = 0; I != A.Streams.size(); ++I) {
    const ExecStats::StreamLaneStats &L = A.Streams[I];
    double Busy = L.HtoDBusyCycles + L.DtoHBusyCycles;
    W.beginObject();
    W.key("stream").number(static_cast<uint64_t>(I));
    W.key("htod_busy").number(L.HtoDBusyCycles);
    W.key("dtoh_busy").number(L.DtoHBusyCycles);
    W.key("copies").number(static_cast<uint64_t>(L.Copies));
    W.key("batches").number(static_cast<uint64_t>(L.Batches));
    W.key("idle").number(A.Wall > Busy ? A.Wall - Busy : 0.0);
    W.endObject();
  }
  W.endArray();
  W.endObject();
  return OS.str();
}

/// The --metrics-report table: where the wall clock went. On a
/// synchronous run the decomposition covers the whole modeled time; on
/// an asynchronous run the compute/HtoD/DtoH rows cover only the costs
/// the host blocked for, and overlapped work shows up as stall time (or
/// not at all when the host never had to wait for it).
void printMetricsReport(const ExecStats &S) {
  WallAttribution A = attributeWall(S);
  double Wall = A.Wall > 0 ? A.Wall : 1.0;
  auto Row = [&](const char *Name, double V) {
    std::fprintf(stderr, "%-26s %16.0f %6.1f%%\n", Name, V, 100.0 * V / Wall);
  };
  std::fprintf(stderr, "-- wall-clock attribution --\n");
  Row("host (cpu+runtime+inspect)", A.Host);
  Row("compute (host-blocking)", A.Compute);
  Row("HtoD (host-blocking)", A.HtoD);
  Row("DtoH (host-blocking)", A.DtoH);
  Row("stall: HtoD fence", A.StallHtoDFence);
  Row("stall: DtoH fence", A.StallDtoHFence);
  Row("stall: host sync", A.StallHostSync);
  std::fprintf(stderr, "%-26s %16.0f\n", "decomposed sum", A.sum());
  std::fprintf(stderr, "%-26s %16.0f\n", "wall cycles", A.Wall);
  for (size_t I = 0; I != A.Streams.size(); ++I) {
    const ExecStats::StreamLaneStats &L = A.Streams[I];
    double Busy = L.HtoDBusyCycles + L.DtoHBusyCycles;
    std::fprintf(stderr,
                 "stream %-2zu HtoD %12.0f  DtoH %12.0f  idle %12.0f  "
                 "(%llu copies, %llu batches)\n",
                 I, L.HtoDBusyCycles, L.DtoHBusyCycles,
                 A.Wall > Busy ? A.Wall - Busy : 0.0,
                 static_cast<unsigned long long>(L.Copies),
                 static_cast<unsigned long long>(L.Batches));
  }
}

/// Writes the observability artifacts the user asked for. Runs after
/// execution so the trace and ledger cover the whole program.
void exportObservability(Machine &Mach, const Options &O) {
  if (!O.TracePath.empty()) {
    std::ofstream Out(O.TracePath);
    if (!Out) {
      std::fprintf(stderr, "cgcmc: cannot write '%s'\n", O.TracePath.c_str());
      return;
    }
    bool Jsonl = O.TracePath.size() > 6 &&
                 O.TracePath.compare(O.TracePath.size() - 6, 6, ".jsonl") == 0;
    if (Jsonl)
      Mach.getTraceCollector().exportJsonl(Out);
    else
      Mach.getTraceCollector().exportChromeTrace(Out);
  }
  if (!O.ProfilePath.empty()) {
    std::ofstream Out(O.ProfilePath);
    if (!Out) {
      std::fprintf(stderr, "cgcmc: cannot write '%s'\n",
                   O.ProfilePath.c_str());
      return;
    }
    writeProfileJson(Out, Mach.getStats(), Mach.getRuntime().getLedger());
  }
  if (O.Metrics) {
    std::string Attribution = renderAttributionJson(Mach.getStats());
    if (O.MetricsPath.empty()) {
      MetricsRegistry::get().writeJson(std::cerr, Attribution);
    } else {
      std::ofstream Out(O.MetricsPath);
      if (!Out) {
        std::fprintf(stderr, "cgcmc: cannot write '%s'\n",
                     O.MetricsPath.c_str());
        return;
      }
      MetricsRegistry::get().writeJson(Out, Attribution);
    }
  }
  if (O.MetricsReport)
    printMetricsReport(Mach.getStats());
}

void printApplicability(Module &M) {
  std::printf("%-24s %6s %8s %8s %8s\n", "kernel", "CGCM", "named",
              "affine", "insp-ex");
  for (const LaunchApplicability &A : analyzeModuleApplicability(M))
    std::printf("%-24s %6s %8s %8s %8s\n",
                A.Launch->getKernel()->getName().c_str(),
                A.CGCM ? "yes" : "no", A.NamedRegions ? "yes" : "no",
                A.Affine ? "yes" : "no",
                A.InspectorExecutor ? "yes" : "no");
}

} // namespace

/// The --sessions=<n> execution path: the program becomes <n> tenants
/// of the runtime server (each on a private machine, arbitrating device
/// capacity through the shared residency index), and every session's
/// output must be bit-identical to one solo run (docs/Server.md).
int runSessions(const std::string &Source, const Options &O) {
  BenchConfig C;
  if (O.Policy == LaunchPolicy::Managed && O.Manage)
    C = O.Optimize ? BenchConfig::CGCMOptimized : BenchConfig::CGCMUnoptimized;
  else if (O.Policy == LaunchPolicy::CpuEmulation)
    C = BenchConfig::Sequential;
  else if (O.Policy == LaunchPolicy::InspectorExecutor)
    C = BenchConfig::InspectorExecutor;
  else if (O.Policy == LaunchPolicy::DemandManaged)
    C = BenchConfig::DemandPaged;
  else {
    std::fprintf(stderr, "cgcmc: --sessions supports the standard "
                         "configurations (managed, seq, ie policies); "
                         "--policy=trap runs single-session only\n");
    return 2;
  }

  RunnerOptions RO;
  RO.AsyncStreams = O.Streams;
  RO.Coalesce = O.Coalesce;
  RO.Devices = O.Devices;
  RO.Placement = O.Placement;
  RO.Dispatch = O.Dispatch;
  RO.XlatCache = O.XlatCache;
  Workload W;
  W.Name = O.InputPath;
  W.Source = Source;
  WorkloadRun Solo = runWorkload(W, C, RO);

  ServerConfig SC;
  SC.Threads = std::min(O.Sessions, 8u);
  SC.Run = RO;
  SessionManager Mgr(SC);
  std::vector<ServerRequest> Reqs(O.Sessions,
                                  ServerRequest{W.Name, Source, C});
  std::vector<ServerResponse> Rs = Mgr.replay(Reqs);

  unsigned Mismatches = 0, Failures = 0;
  for (const ServerResponse &R : Rs) {
    if (R.Output != Solo.Output)
      ++Mismatches;
    if (!R.Ok) {
      ++Failures;
      std::fprintf(stderr, "cgcmc: session %u: %s\n", R.Session,
                   R.Error.c_str());
    }
  }
  std::fputs(Solo.Output.c_str(), stdout);
  std::fprintf(stderr,
               "cgcmc: %u/%u sessions bit-identical to solo, %u audit "
               "failure(s), %llu eviction(s) server-wide\n",
               O.Sessions - Mismatches, O.Sessions, Failures,
               static_cast<unsigned long long>(Mgr.index().evictions()));
  return (Mismatches || Failures) ? 1 : 0;
}

int main(int Argc, char **Argv) {
  Options O;
  if (!parseArgs(Argc, Argv, O)) {
    usage();
    return 2;
  }

  std::ifstream In(O.InputPath);
  if (!In) {
    std::fprintf(stderr, "cgcmc: cannot open '%s'\n", O.InputPath.c_str());
    return 2;
  }
  std::ostringstream Buf;
  Buf << In.rdbuf();

  // A .ir input is parsed as already-lowered IR (e.g. saved --dump-ir
  // output) and run as-is; anything else goes through the frontend and
  // pipeline.
  if (O.InputPath.size() > 3 &&
      O.InputPath.compare(O.InputPath.size() - 3, 3, ".ir") == 0) {
    if (O.Sessions > 1 && !O.AnalyzeCost) {
      std::fprintf(stderr, "cgcmc: --sessions compiles its sessions from "
                           "source; saved .ir input runs single-session "
                           "only\n");
      return 2;
    }
    std::unique_ptr<Module> M = parseIR(Buf.str(), O.InputPath);
    if (O.AnalyzeCost)
      return runCostAnalysis(*M, O);
    if (O.Analyze) {
      // Saved IR is analyzed as-is: it already carries whatever
      // management it was dumped with, so no passes are re-run (and
      // kernel provenance is lost, so races are checked conservatively).
      Options AsIs = O;
      AsIs.Manage = false;
      return runAnalysis(*M, AsIs, DOALLStats());
    }
    Machine Mach;
    Mach.setLaunchPolicy(O.Policy);
    Mach.setDispatchMode(O.Dispatch);
    Mach.getRuntime().setXlatCacheEnabled(O.XlatCache);
    Mach.setTracingEnabled(!O.TracePath.empty());
    if (O.Devices > 1)
      Mach.setDevices(O.Devices, O.Placement);
    Mach.setAsyncTransfers(O.Streams, O.Coalesce);
    Mach.loadModule(*M);
    int64_t Exit = Mach.run();
    std::fputs(Mach.getOutput().c_str(), stdout);
    exportObservability(Mach, O);
    return static_cast<int>(Exit);
  }

  // Multi-session execution bypasses the single-machine path entirely;
  // analysis modes fall through (--analyze=cost owns its own refusal).
  if (O.Sessions > 1 && !O.Analyze && !O.AnalyzeCost) {
    if (!O.Passes.empty() || !O.DumpStage.empty() || O.Applicability ||
        !O.TracePath.empty() || !O.ProfilePath.empty() || O.Metrics ||
        O.MetricsReport || O.TimePasses || O.Remarks ||
        !O.PrintAfter.empty() || O.Stats) {
      std::fprintf(stderr,
                   "cgcmc: --sessions runs the standard pipeline on the "
                   "runtime server; drop the introspection flags (or run "
                   "them single-session)\n");
      return 2;
    }
    return runSessions(Buf.str(), O);
  }

  std::unique_ptr<Module> M = compileMiniC(Buf.str(), O.InputPath);
  if (O.DumpStage == "front") {
    std::fputs(M->getString().c_str(), stdout);
    return 0;
  }

  DiagnosticEngine RemarksDE;
  DiagnosticEngine *RE = O.Remarks ? &RemarksDE : nullptr;

  // The compilation schedule as a pipeline string. Staged --dump-ir,
  // --applicability, and --analyze need the module at an intermediate
  // point, so they run a truncated prefix of the default schedule;
  // everything else runs either the user's --passes or the full default.
  std::string Prefix = "mem2reg";
  if (O.Parallelize)
    Prefix += ",doall";
  std::string Text = Prefix;
  if (O.Manage)
    Text += ",comm";
  if (O.Manage && O.Optimize)
    Text += ",fixpoint(glue,alloca-promote,map-promote)";
  if (!O.Passes.empty())
    Text = O.Passes;

  // --analyze=cost wants the module exactly as it would execute, so it
  // keeps the full schedule; plain --analyze stops pre-management.
  if (O.DumpStage == "ssa")
    Text = "mem2reg";
  else if (O.DumpStage == "doall" || O.Applicability ||
           (O.Analyze && !O.AnalyzeCost))
    Text = Prefix;
  else if (O.DumpStage == "managed")
    Text = Prefix + (O.Manage ? ",comm" : "");

  // The machine exists before compilation so per-pass trace spans land
  // in the same collector as the execution events.
  Machine Mach;
  Mach.setLaunchPolicy(O.Policy);
  Mach.setDispatchMode(O.Dispatch);
  Mach.getRuntime().setXlatCacheEnabled(O.XlatCache);
  Mach.setTracingEnabled(!O.TracePath.empty());
  if (O.Devices > 1)
    Mach.setDevices(O.Devices, O.Placement);
  Mach.setAsyncTransfers(O.Streams, O.Coalesce);

  PipelineRunOptions RunOpts;
  RunOpts.Remarks = RE;
  RunOpts.TimePasses = O.TimePasses;
  RunOpts.VerifyEach = O.VerifyEach;
  RunOpts.PrintAfter = O.PrintAfter;
  if (!O.TracePath.empty())
    RunOpts.Trace = &Mach.getTraceCollector();
  PipelineResult R = runPassPipeline(*M, Text, RunOpts);

  if (O.Applicability) {
    printApplicability(*M);
    return 0;
  }
  if (O.AnalyzeCost)
    return runCostAnalysis(*M, O);
  if (O.Analyze)
    return runAnalysis(*M, O, R.Doall);
  if (O.Remarks)
    printRemarks(RemarksDE, O);
  if (!O.DumpStage.empty()) {
    std::fputs(M->getString().c_str(), stdout);
    return 0;
  }

  Mach.loadModule(*M);
  int64_t Exit = Mach.run();
  std::fputs(Mach.getOutput().c_str(), stdout);
  exportObservability(Mach, O);

  if (O.Stats) {
    const ExecStats &S = Mach.getStats();
    auto U = [](uint64_t V) { return static_cast<unsigned long long>(V); };
    std::fprintf(stderr,
                 "-- cgcmc stats --\n"
                 "%-28s %14llu\n"
                 "%-28s %14llu\n"
                 "%-28s %14llu\n"
                 "%-28s %14llu\n"
                 "%-28s %14llu\n"
                 "%-28s %14llu transfers, %llu bytes\n"
                 "%-28s %14llu transfers, %llu bytes\n"
                 "%-28s %14llu\n"
                 "%-28s %14llu bytes\n"
                 "%-28s %14.0f (cpu %.0f, gpu %.0f, comm %.0f, "
                 "runtime %.0f, inspect %.0f)\n",
                 "cpu ops", U(S.CpuOps), "gpu ops", U(S.GpuOps),
                 "kernel launches", U(S.KernelLaunches), "runtime calls",
                 U(S.RuntimeCalls), "demand faults", U(S.DemandFaults),
                 "HtoD", U(S.TransfersHtoD), U(S.BytesHtoD), "DtoH",
                 U(S.TransfersDtoH), U(S.BytesDtoH),
                 "epoch-suppressed copies", U(S.EpochSuppressedCopies),
                 "peak resident device", U(S.PeakResidentDeviceBytes),
                 "modeled cycles", S.totalCycles(), S.CpuCycles, S.GpuCycles,
                 S.CommCycles, S.RuntimeCycles, S.InspectorCycles);
    if (O.Streams > 0)
      std::fprintf(stderr,
                   "%-28s %14.0f (saved %.0f by overlap)\n"
                   "%-28s %14.0f\n"
                   "%-28s %14llu async in %llu batches "
                   "(%llu coalesced)\n"
                   "%-28s %14llu\n",
                   "wall cycles", S.wallCycles(), S.overlapSavedCycles(),
                   "host stall cycles", S.StallCycles, "transfers",
                   U(S.AsyncTransfers), U(S.DmaBatches),
                   U(S.CoalescedTransfers), "host syncs", U(S.HostSyncs));
    Mach.getRuntime().getLedger().report(std::cerr);
  }
  return static_cast<int>(Exit);
}
