#!/usr/bin/env python3
"""Gate bench results against the committed repo-root baselines.

Usage:
  check_bench_regression.py --baseline BENCH_transfer.json \
      --current build/bench_transfer.json [--threshold 0.15]

Compares the deterministic modeled-cycle sections of two cgcm-bench-v1
files:

  * ``transfer_overlap`` (micro_runtime): per (workload, streams,
    coalesce, pinned) scenario, ``wall_cycles`` must not exceed the
    baseline by more than ``--threshold`` (default 15%), and
    ``output_equal`` must stay true.
  * ``rows`` entries whose config is not a host wall-time row
    (time_passes / micro_runtime modeled rows): ``cycles`` is checked
    the same way.

Host wall-time rows (any ``host-*`` config) and the ``pass_timings``
section are machine-noise and are ignored.  Scenarios present only in
the current run are reported but do not fail the gate (new coverage);
scenarios that disappeared fail it (lost coverage).

The workload *name sets* of the two files — taken over every ``rows``
and ``transfer_overlap`` entry, noisy configs included — must also
match: a silently shrunk or swapped workload set would make the
per-entry comparison vacuously green.  Drift fails the gate unless
``--allow-workload-drift`` downgrades it to a loud warning.

Exit status: 0 = within budget, 1 = regression, lost coverage, or
workload-set drift, 2 = usage / malformed input.
"""

import argparse
import json
import sys

NOISY_CONFIGS = {"host-ns-per-op"}
# Any config under this prefix is a host wall-clock measurement (e.g.
# server_throughput's host-requests-per-sec): real, machine-dependent,
# never gated.
NOISY_PREFIX = "host-"


def is_noisy(config):
    return config in NOISY_CONFIGS or (config or "").startswith(NOISY_PREFIX)


def load(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, ValueError) as e:
        print(f"error: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)
    if doc.get("schema") != "cgcm-bench-v1":
        print(f"error: {path}: not a cgcm-bench-v1 file", file=sys.stderr)
        sys.exit(2)
    return doc


def overlap_key(row):
    return (row.get("workload"), row.get("streams"), row.get("coalesce"),
            row.get("pinned"))


def workload_set(doc):
    """Every workload named anywhere in the file, noisy rows included."""
    names = set()
    for section in ("rows", "transfer_overlap"):
        for row in doc.get(section, []):
            w = row.get("workload")
            if w is not None:
                names.add(w)
    return names


def modeled_rows(doc):
    out = {}
    for row in doc.get("rows", []):
        if is_noisy(row.get("config")):
            continue
        out[(row.get("workload"), row.get("config"))] = row
    return out


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--baseline", required=True)
    ap.add_argument("--current", required=True)
    ap.add_argument("--threshold", type=float, default=0.15,
                    help="allowed fractional wall-cycle growth (default .15)")
    ap.add_argument("--allow-workload-drift", action="store_true",
                    help="warn instead of failing when the two files cover "
                         "different workload name sets")
    args = ap.parse_args()

    base = load(args.baseline)
    cur = load(args.current)
    failures = 0

    lost = sorted(workload_set(base) - workload_set(cur))
    gained = sorted(workload_set(cur) - workload_set(base))
    if lost or gained:
        msg = (f"workload-set drift: lost {lost if lost else 'none'}, "
               f"gained {gained if gained else 'none'}")
        if args.allow_workload_drift:
            print(f"WARNING: {msg} (tolerated by --allow-workload-drift)")
        else:
            failures += 1
            print(f"DRIFT: {msg}")

    def check(name, key, base_val, cur_val):
        nonlocal failures
        if base_val <= 0:
            return
        growth = (cur_val - base_val) / base_val
        if growth > args.threshold:
            failures += 1
            print(f"REGRESSION {name} {key}: {base_val:.0f} -> "
                  f"{cur_val:.0f} cycles (+{growth * 100:.1f}% > "
                  f"{args.threshold * 100:.0f}%)")
        elif growth < -args.threshold:
            print(f"note: {name} {key} improved {-growth * 100:.1f}%; "
                  f"consider refreshing the committed baseline")

    base_overlap = {overlap_key(r): r for r in base.get("transfer_overlap", [])}
    cur_overlap = {overlap_key(r): r for r in cur.get("transfer_overlap", [])}
    for key, brow in sorted(base_overlap.items(), key=str):
        crow = cur_overlap.get(key)
        if crow is None:
            failures += 1
            print(f"MISSING transfer_overlap scenario {key}")
            continue
        if not crow.get("output_equal", True):
            failures += 1
            print(f"OUTPUT MISMATCH transfer_overlap {key}")
        check("transfer_overlap", key, brow.get("wall_cycles", 0),
              crow.get("wall_cycles", 0))
    for key in sorted(set(cur_overlap) - set(base_overlap), key=str):
        print(f"note: new transfer_overlap scenario {key} (unchecked)")

    base_rows = modeled_rows(base)
    cur_rows = modeled_rows(cur)
    for key, brow in sorted(base_rows.items(), key=str):
        crow = cur_rows.get(key)
        if crow is None:
            failures += 1
            print(f"MISSING modeled row {key}")
            continue
        check("row", key, brow.get("cycles", 0), crow.get("cycles", 0))
    for key in sorted(set(cur_rows) - set(base_rows), key=str):
        print(f"note: new modeled row {key} (unchecked)")

    checked = len(base_overlap) + len(base_rows)
    if failures:
        print(f"{failures} regression(s) across {checked} checked entries")
        return 1
    print(f"bench within budget: {checked} entries within "
          f"{args.threshold * 100:.0f}% of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
