#!/usr/bin/env python3
"""Fail when the documentation drifts from the tools it describes.

Usage:
  check_doc_drift.py --build-dir build [--repo-root .]

Two invariants, both cheap enough for every ctest run and CI push:

1. **Flags.** Every `--flag` token mentioned anywhere in README.md or
   docs/*.md must appear in the `--help` output of at least one built
   tool (cgcmc, cgcm-fuzz, every bench driver). A renamed or deleted
   flag therefore breaks the build until its documentation follows.
   Flags belonging to external tools (cmake, ctest, google-benchmark,
   gtest) are allowlisted by prefix.

2. **Reachability.** Every file under docs/ must be linked from
   docs/INDEX.md — the index stays the index — and every relative
   `.md` link in README.md, DESIGN.md, and docs/*.md must resolve to an
   existing file, so crosslinks cannot silently go stale.

3. **Subsystem coverage.** Every `src/<subsystem>/` directory must be
   mentioned (as ``src/<name>``) somewhere in docs/INDEX.md or a doc
   it links — a new subsystem cannot land without the documentation
   map knowing it exists (docs/Architecture.md is the natural home).

Stdlib only — runnable anywhere CI can run python3.
"""

import argparse
import os
import re
import subprocess
import sys

FLAG_RE = re.compile(r"--[A-Za-z][A-Za-z0-9_-]*")
LINK_RE = re.compile(r"\]\(([^)#\s]+\.md)\)")

# Flags documented for tools this repo does not build.
EXTERNAL_PREFIXES = (
    "--build",      # cmake --build
    "--test-dir",   # ctest --test-dir
    "--benchmark",  # google-benchmark passthrough
    "--gtest",      # gtest passthrough
    "--help",
)

ERRORS = []


def error(msg):
    ERRORS.append(msg)


def tool_help(path):
    """--help output (both streams; exit status is irrelevant here)."""
    try:
        r = subprocess.run([path, "--help"], capture_output=True,
                           text=True, timeout=60)
    except OSError as e:
        error(f"{path}: cannot run --help: {e}")
        return ""
    return r.stdout + r.stderr


def collect_tool_flags(build_dir, root):
    tools = []
    for name in ("cgcmc", "cgcm-fuzz", "cgcm-static-parity",
                 "cgcm-metrics-diff"):
        p = os.path.join(build_dir, "tools", name)
        if os.path.isfile(p) and os.access(p, os.X_OK):
            tools.append(p)
        else:
            error(f"{p}: tool binary missing (build first)")
    bench_dir = os.path.join(build_dir, "bench")
    if os.path.isdir(bench_dir):
        for name in sorted(os.listdir(bench_dir)):
            p = os.path.join(bench_dir, name)
            if os.path.isfile(p) and os.access(p, os.X_OK):
                tools.append(p)
    else:
        error(f"{bench_dir}: bench directory missing (build first)")
    flags = set()
    for p in tools:
        flags |= set(FLAG_RE.findall(tool_help(p)))
    # The python helper scripts document argparse flags of their own.
    scripts_dir = os.path.join(root, "tools")
    for name in sorted(os.listdir(scripts_dir)):
        if not name.endswith(".py"):
            continue
        p = os.path.join(scripts_dir, name)
        try:
            r = subprocess.run([sys.executable, p, "--help"],
                               capture_output=True, text=True, timeout=60)
            flags |= set(FLAG_RE.findall(r.stdout + r.stderr))
            tools.append(p)
        except OSError as e:
            error(f"{p}: cannot run --help: {e}")
    return flags, tools


def doc_files(root):
    docs = [os.path.join(root, "README.md"), os.path.join(root, "DESIGN.md")]
    docs_dir = os.path.join(root, "docs")
    for name in sorted(os.listdir(docs_dir)):
        if name.endswith(".md"):
            docs.append(os.path.join(docs_dir, name))
    return docs


def check_flags(root, known_flags):
    for path in doc_files(root):
        with open(path) as f:
            text = f.read()
        for flag in sorted(set(FLAG_RE.findall(text))):
            if flag in known_flags:
                continue
            if any(flag.startswith(p) for p in EXTERNAL_PREFIXES):
                continue
            rel = os.path.relpath(path, root)
            error(f"{rel}: documents {flag!r}, which no built tool's "
                  "--help mentions")


def check_links(root):
    docs_dir = os.path.join(root, "docs")
    index = os.path.join(docs_dir, "INDEX.md")
    if not os.path.isfile(index):
        error("docs/INDEX.md: missing")
        return
    with open(index) as f:
        index_links = set(LINK_RE.findall(f.read()))
    for name in sorted(os.listdir(docs_dir)):
        if name.endswith(".md") and name != "INDEX.md":
            if name not in index_links:
                error(f"docs/{name}: not linked from docs/INDEX.md")
    # Every relative .md link must resolve.
    for path in doc_files(root) + [index]:
        base = os.path.dirname(path)
        with open(path) as f:
            links = LINK_RE.findall(f.read())
        for link in links:
            if link.startswith(("http://", "https://")):
                continue
            if not os.path.isfile(os.path.normpath(os.path.join(base, link))):
                rel = os.path.relpath(path, root)
                error(f"{rel}: stale link to {link!r}")


def check_subsystems(root):
    """Every src/<dir>/ must be reachable from docs/INDEX.md."""
    src_dir = os.path.join(root, "src")
    docs_dir = os.path.join(root, "docs")
    index = os.path.join(docs_dir, "INDEX.md")
    if not os.path.isdir(src_dir) or not os.path.isfile(index):
        return
    subsystems = sorted(
        name for name in os.listdir(src_dir)
        if os.path.isdir(os.path.join(src_dir, name)))
    # The reachable set: INDEX.md plus every docs/*.md it links.
    reachable = [index]
    with open(index) as f:
        for link in LINK_RE.findall(f.read()):
            p = os.path.normpath(os.path.join(docs_dir, link))
            if os.path.isfile(p):
                reachable.append(p)
    text = ""
    for path in reachable:
        with open(path) as f:
            text += f.read()
    for name in subsystems:
        if f"src/{name}" not in text:
            error(f"src/{name}/: subsystem not mentioned in docs/INDEX.md "
                  "or any doc it links (add it to docs/Architecture.md)")


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--build-dir", default="build",
                    help="CMake build directory holding the tool binaries")
    ap.add_argument("--repo-root", default=None,
                    help="repository root (default: this script's parent)")
    args = ap.parse_args()
    root = args.repo_root or os.path.dirname(
        os.path.dirname(os.path.abspath(__file__)))

    known_flags, tools = collect_tool_flags(args.build_dir, root)
    if known_flags:
        check_flags(root, known_flags)
    check_links(root)
    check_subsystems(root)

    if ERRORS:
        for e in ERRORS:
            print(f"doc-drift: {e}", file=sys.stderr)
        sys.exit(1)
    print(f"doc-drift: OK ({len(tools)} tools, {len(known_flags)} flags, "
          f"{len(doc_files(root)) + 1} documents)")


if __name__ == "__main__":
    main()
