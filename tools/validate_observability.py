#!/usr/bin/env python3
"""Validate CGCM observability JSON documents against their schemas.

Usage:
  validate_observability.py --trace trace.json --profile profile.json \
      [--bench out.json ...] [--metrics metrics.json ...]

Checks the Chrome trace export, the cgcm-profile-v1 document (including
the ledger == ExecStats totals invariant), any number of cgcm-bench-v1
files (including their embedded "metrics" section), and any number of
standalone cgcm-metrics-v1 files. Exits non-zero with a message on the
first violation. Stdlib only — runnable anywhere CI can run python3.
"""

import argparse
import json
import re
import sys

TRACE_PHASES = {"X", "i"}

STATS_KEYS = {
    "cpu_cycles", "gpu_cycles", "comm_cycles", "inspector_cycles",
    "runtime_cycles", "total_cycles", "kernel_launches",
    "transfers_htod", "transfers_dtoh", "bytes_htod", "bytes_dtoh",
    "cpu_ops", "gpu_ops", "runtime_calls", "demand_faults",
    "epoch_suppressed_copies", "peak_resident_device_bytes",
    # Stream-engine accounting (docs/TransferEngine.md).
    "wall_cycles", "stall_cycles", "overlap_saved_cycles",
    "async_transfers", "dma_batches", "coalesced_transfers", "host_syncs",
}

LEDGER_KEYS = {
    "site", "line", "col", "units", "bytes_htod", "bytes_dtoh",
    "transfers_htod", "transfers_dtoh", "epoch_suppressed",
    "reuse_suppressed", "coalesced", "map_calls", "unmap_calls",
    "release_calls",
}

BENCH_ROW_KEYS = {
    "workload", "config", "cycles", "bytes_htod", "bytes_dtoh", "speedup",
}

# Optional pipeline-instrumentation sections (bench/BenchJson.h).
PASS_TIMING_KEYS = {"pass", "wall_ms", "ir_delta", "runs"}
ANALYSIS_CACHE_KEYS = {"analysis", "constructions", "hits"}
TRANSFER_OVERLAP_KEYS = {
    "workload", "streams", "coalesce", "pinned", "total_cycles",
    "wall_cycles", "stall_cycles", "overlap_saved_cycles",
    "async_transfers", "dma_batches", "coalesced_transfers", "host_syncs",
    "output_equal",
}
# Per-device traffic/compute rows, emitted only by --devices>1 runs
# (docs/MultiGPU.md).
DEVICE_KEYS = {
    "device", "bytes_htod", "bytes_dtoh", "transfers_htod",
    "transfers_dtoh", "p2p_transfers", "p2p_bytes", "compute_cycles",
}

# Trace lane names: the shared host lane, the single-device lanes, and
# the device-pool scheme dev<D>/gpu-compute, dev<D>/stream-<s>
# (exec/Machine.cpp applyLaneLayout).
LANE_NAME_RE = r"^(host|(dev\d+/)?(gpu-compute|stream-\d+))$"


def fail(path, msg):
    sys.exit(f"{path}: {msg}")


def expect(cond, path, msg):
    if not cond:
        fail(path, msg)


def load(path):
    try:
        with open(path) as f:
            return json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(path, f"cannot parse: {e}")


def validate_trace(path):
    doc = load(path)
    expect(isinstance(doc.get("traceEvents"), list), path,
           "missing traceEvents array")
    other = doc.get("otherData", {})
    expect(other.get("clock") == "modeled-cycles", path,
           f"otherData.clock is {other.get('clock')!r}, "
           "expected 'modeled-cycles'")
    emitted = other.get("emitted")
    dropped = other.get("dropped")
    expect(isinstance(emitted, int) and isinstance(dropped, int), path,
           "otherData.emitted/dropped missing or not integers")
    # Lane-name metadata ("ph":"M", emitted only by multi-lane async
    # traces) is presentation, not data: validate its shape, then exclude
    # it from the count/sequence invariants below.
    meta = [ev for ev in doc["traceEvents"] if ev.get("ph") == "M"]
    for i, ev in enumerate(meta):
        where = f"traceEvents metadata[{i}]"
        for key in ("name", "pid", "tid", "args"):
            expect(key in ev, path, f"{where}: missing {key!r}")
        expect(ev["name"] == "thread_name", path,
               f"{where}: metadata name {ev['name']!r}")
        lane = ev["args"].get("name")
        expect(isinstance(lane, str) and re.match(LANE_NAME_RE, lane), path,
               f"{where}: lane name {lane!r} does not match the "
               "host / [dev<D>/]gpu-compute / [dev<D>/]stream-<s> scheme")
    events = [ev for ev in doc["traceEvents"] if ev.get("ph") != "M"]
    expect(len(events) == emitted - dropped, path,
           f"{len(events)} events but emitted={emitted} dropped={dropped}")
    last_seq = -1
    lanes = set()
    for i, ev in enumerate(events):
        where = f"traceEvents[{i}]"
        for key in ("name", "cat", "ph", "ts", "pid", "tid", "seq"):
            expect(key in ev, path, f"{where}: missing {key!r}")
        expect(ev["ph"] in TRACE_PHASES, path,
               f"{where}: phase {ev['ph']!r} not in {sorted(TRACE_PHASES)}")
        if ev["ph"] == "X":
            expect("dur" in ev, path, f"{where}: span missing 'dur'")
        expect(ev["seq"] > last_seq, path,
               f"{where}: seq {ev['seq']} not increasing")
        last_seq = ev["seq"]
        lanes.add(ev["tid"])
    # Multi-lane traces must name every lane they use (and vice versa:
    # metadata only appears when there is more than the host lane).
    if meta:
        named = {ev["tid"] for ev in meta}
        expect(lanes <= named, path,
               f"lanes {sorted(lanes - named)} used but not named")
    else:
        expect(lanes <= {1}, path,
               f"multi-lane trace {sorted(lanes)} without thread_name "
               "metadata")
    print(f"{path}: OK ({len(events)} events, {len(lanes)} lanes, "
          f"{dropped} dropped)")


def validate_profile(path):
    doc = load(path)
    expect(doc.get("schema") == "cgcm-profile-v1", path,
           f"schema is {doc.get('schema')!r}, expected 'cgcm-profile-v1'")
    stats = doc.get("stats")
    expect(isinstance(stats, dict), path, "missing stats object")
    missing = STATS_KEYS - stats.keys()
    expect(not missing, path, f"stats missing keys: {sorted(missing)}")
    ledger = doc.get("ledger")
    expect(isinstance(ledger, list), path, "missing ledger array")
    for i, row in enumerate(ledger):
        missing = LEDGER_KEYS - row.keys()
        expect(not missing, path,
               f"ledger[{i}] missing keys: {sorted(missing)}")
    # The invariant the ledger is built on: per-site attribution must
    # account for every byte and every transfer ExecStats counted.
    for stat_key, ledger_key in (("bytes_htod", "bytes_htod"),
                                 ("bytes_dtoh", "bytes_dtoh"),
                                 ("transfers_htod", "transfers_htod"),
                                 ("transfers_dtoh", "transfers_dtoh")):
        total = sum(row[ledger_key] for row in ledger)
        expect(total == stats[stat_key], path,
               f"ledger {ledger_key} sum {total} != "
               f"stats.{stat_key} {stats[stat_key]}")
    print(f"{path}: OK ({len(ledger)} ledger sites, "
          f"{stats['bytes_htod']}B HtoD / {stats['bytes_dtoh']}B DtoH)")


METRIC_HISTOGRAM_KEYS = {
    "name", "count", "sum", "min", "max", "p50", "p90", "p99", "buckets",
}
ATTRIBUTION_KEYS = {
    "wall_cycles", "host", "compute", "htod", "dtoh", "stall_htod_fence",
    "stall_dtoh_fence", "stall_host_sync", "streams",
}
ATTRIBUTION_STREAM_KEYS = {
    "stream", "htod_busy", "dtoh_busy", "copies", "batches", "idle",
}


def validate_metrics_object(path, doc, where="metrics"):
    """Validates one cgcm-metrics-v1 object (standalone file or the
    embedded bench section)."""
    expect(doc.get("schema") == "cgcm-metrics-v1", path,
           f"{where}: schema is {doc.get('schema')!r}, "
           "expected 'cgcm-metrics-v1'")
    for section in ("counters", "gauges"):
        entries = doc.get(section)
        expect(isinstance(entries, list), path,
               f"{where}: missing {section} array")
        for i, entry in enumerate(entries):
            expect(set(entry.keys()) == {"name", "value"}, path,
                   f"{where}: {section}[{i}] keys {sorted(entry.keys())}")
    hists = doc.get("histograms")
    expect(isinstance(hists, list), path, f"{where}: missing histograms")
    for i, h in enumerate(hists):
        label = f"{where}: histograms[{i}]"
        expect(set(h.keys()) == METRIC_HISTOGRAM_KEYS, path,
               f"{label} keys {sorted(h.keys())}")
        buckets = h["buckets"]
        expect(isinstance(buckets, list), path, f"{label}: buckets not a list")
        expect(sum(b["count"] for b in buckets) == h["count"], path,
               f"{label}: bucket counts do not sum to count")
        les = [b["le"] for b in buckets]
        expect(les == sorted(les) and len(set(les)) == len(les), path,
               f"{label}: bucket bounds not strictly ascending")
        if h["count"]:
            expect(h["min"] <= h["p50"] <= h["p90"] <= h["p99"], path,
                   f"{label}: percentiles not monotone")
    for section in ("counters", "gauges", "histograms"):
        names = [e["name"] for e in doc[section]]
        expect(names == sorted(names), path,
               f"{where}: {section} not name-sorted")
    attr = doc.get("attribution")
    if attr is not None:
        missing = ATTRIBUTION_KEYS - attr.keys()
        expect(not missing, path,
               f"{where}: attribution missing keys {sorted(missing)}")
        for i, s in enumerate(attr["streams"]):
            expect(set(s.keys()) == ATTRIBUTION_STREAM_KEYS, path,
                   f"{where}: attribution.streams[{i}] keys "
                   f"{sorted(s.keys())}")
        parts = (attr["host"] + attr["compute"] + attr["htod"] + attr["dtoh"]
                 + attr["stall_htod_fence"] + attr["stall_dtoh_fence"]
                 + attr["stall_host_sync"])
        expect(abs(parts - attr["wall_cycles"]) <= 1e-6 *
               max(1.0, attr["wall_cycles"]), path,
               f"{where}: attribution parts {parts} != wall "
               f"{attr['wall_cycles']}")
    return (len(doc["counters"]), len(doc["gauges"]), len(hists))


def validate_metrics(path):
    doc = load(path)
    nc, ng, nh = validate_metrics_object(path, doc, where="document")
    print(f"{path}: OK ({nc} counters, {ng} gauges, {nh} histograms"
          + (", attribution" if "attribution" in doc else "") + ")")


def validate_bench(path):
    doc = load(path)
    expect(doc.get("schema") == "cgcm-bench-v1", path,
           f"schema is {doc.get('schema')!r}, expected 'cgcm-bench-v1'")
    expect(isinstance(doc.get("bench"), str) and doc["bench"], path,
           "missing bench name")
    rows = doc.get("rows")
    expect(isinstance(rows, list) and rows, path, "missing or empty rows")
    for i, row in enumerate(rows):
        expect(set(row.keys()) == BENCH_ROW_KEYS, path,
               f"rows[{i}] keys {sorted(row.keys())} != "
               f"{sorted(BENCH_ROW_KEYS)}")
    for section, keys in (("pass_timings", PASS_TIMING_KEYS),
                          ("analysis_cache", ANALYSIS_CACHE_KEYS),
                          ("transfer_overlap", TRANSFER_OVERLAP_KEYS),
                          ("devices", DEVICE_KEYS)):
        entries = doc.get(section)
        if entries is None:
            continue
        expect(isinstance(entries, list) and entries, path,
               f"{section} present but empty")
        for i, entry in enumerate(entries):
            expect(set(entry.keys()) == keys, path,
                   f"{section}[{i}] keys {sorted(entry.keys())} != "
                   f"{sorted(keys)}")
    devices = doc.get("devices", [])
    for i, entry in enumerate(devices):
        expect(entry["device"] == i, path,
               f"devices[{i}]: device index {entry['device']} out of order")
    for i, entry in enumerate(doc.get("transfer_overlap", [])):
        expect(entry["output_equal"] is True, path,
               f"transfer_overlap[{i}] ({entry['workload']!r}, "
               f"streams={entry['streams']}): output diverged from sync")
        expect(entry["wall_cycles"] <= entry["total_cycles"] + 1e-6, path,
               f"transfer_overlap[{i}]: wall_cycles exceeds total_cycles")
    if "metrics" in doc:
        expect(isinstance(doc["metrics"], dict), path,
               "metrics section not an object")
        validate_metrics_object(path, doc["metrics"])
    extra = ", ".join(s for s in ("pass_timings", "analysis_cache",
                                  "transfer_overlap", "devices", "metrics")
                      if s in doc)
    print(f"{path}: OK (bench {doc['bench']!r}, {len(rows)} rows"
          + (f", sections: {extra}" if extra else "") + ")")


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--trace", help="Chrome trace export to validate")
    ap.add_argument("--profile", help="cgcm-profile-v1 document to validate")
    ap.add_argument("--bench", nargs="*", default=[],
                    help="cgcm-bench-v1 documents to validate")
    ap.add_argument("--metrics", nargs="*", default=[],
                    help="cgcm-metrics-v1 documents to validate")
    args = ap.parse_args()
    if not (args.trace or args.profile or args.bench or args.metrics):
        ap.error("nothing to validate")
    if args.trace:
        validate_trace(args.trace)
    if args.profile:
        validate_profile(args.profile)
    for path in args.bench:
        validate_bench(path)
    for path in args.metrics:
        validate_metrics(path)


if __name__ == "__main__":
    main()
